"""StreamEngine: executes dataflow jobs on the simulated actor cluster.

The engine owns everything the paper's runtime does:

* builds one :class:`OperatorRuntime` per (job, stage, parallel index) and
  places them on nodes,
* wires channels (with per-channel FIFO delivery, §4.3) and input-channel
  indices, including the ingestion clients in front of source operators,
* embeds a context converter in every operator (and client) when contexts
  are enabled (§5.2 / Fig. 5a),
* drives the worker loop: pop operator by the node scheduler's order, run
  messages for a quantum, preemption check, requeue (§5.2 / Fig. 5b),
* routes emissions (key partitioning with progress heartbeats, or fixed
  round-robin pairing), sends RC-carrying acknowledgements upstream, and
* records latency/throughput/violation metrics at sinks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.context import PriorityContext
from repro.core.converter import ContextConverter
from repro.core.policies import make_policy
from repro.core.profiler import CostProfiler, GaussianNoiseInjector
from repro.core.progress_map import make_progress_map
from repro.core.scheduler import CameoRunQueue, Mailbox, RunQueue
from repro.dataflow.events import EventBatch
from repro.dataflow.graph import StageSpec
from repro.dataflow.jobs import JobSpec
from repro.dataflow.messages import Message, MessageKind
from repro.dataflow.operators import (
    Emission,
    OpAddress,
    SinkOperator,
    SourceOperator,
    WindowedJoinOperator,
)
from repro.metrics.collectors import MetricsHub
from repro.metrics.stats import RunningStat
from repro.runtime.baselines import FifoRunQueue, OrleansRunQueue
from repro.runtime.config import EngineConfig
from repro.runtime.placement import Placement
from repro.runtime.workers import Node, Worker
from repro.sim.kernel import Simulator
from repro.sim.network import ChannelTable, ConstantDelay, JitteredDelay
from repro.sim.rng import RngRegistry


@dataclass
class Route:
    """Out-edge of an operator: where its emissions go.

    ``links`` pairs each target with its pre-resolved delivery channel and
    input-channel index — filled once at wiring time so the per-send hot
    path does no dict lookups."""

    dst_stage: StageSpec
    targets: list["OperatorRuntime"]
    key_partitioned: bool
    links: list[tuple] = field(default_factory=list)


class OperatorRuntime:
    """An operator bound to a node, a mailbox and a context converter.

    Besides the wiring, this caches everything the per-message hot path
    would otherwise have to look up or re-derive: the job's metrics
    object, source/sink type flags, the stage name and cost model, and the
    per-sender reply route."""

    __slots__ = (
        "operator",
        "stage",
        "job",
        "node_id",
        "mailbox",
        "converter",
        "routes",
        "busy",
        "queue_token",
        "queued_key",
        "queued_seq",
        "in_queue",
        "blocked",
        "job_metrics",
        "is_source",
        "is_sink",
        "stage_name",
        "cost_model",
        "reply_cache",
        "queue_stat",
        "exec_stat",
        "_channel_index",
        "_channel_senders",
    )

    def __init__(
        self,
        operator,
        stage: StageSpec,
        job: JobSpec,
        node_id: int,
        mailbox: Mailbox,
        converter: Optional[ContextConverter],
    ):
        self.operator = operator
        self.stage = stage
        self.job = job
        self.node_id = node_id
        self.mailbox = mailbox
        self.converter = converter
        self.routes: list[Route] = []
        self.busy = False
        self.queue_token = -1
        self.queued_key = 0.0
        self.queued_seq = 0
        self.in_queue = False
        #: client messages held back by ingestion back-pressure (FIFO)
        self.blocked: deque = deque()
        self.job_metrics = None  # bound by the engine once jobs register
        self.is_source = isinstance(operator, SourceOperator)
        self.is_sink = isinstance(operator, SinkOperator)
        self.stage_name = stage.name
        self.cost_model = stage.cost
        #: sender -> (converter, reply destination node, static transit or
        #: None when delays are jittered) for replies
        self.reply_cache: dict = {}
        #: per-stage queueing/execution stats, bound on first use (shared
        #: across parallel indices of the stage via the job metrics dicts)
        self.queue_stat = None
        self.exec_stat = None
        self._channel_index: dict[Any, int] = {}
        self._channel_senders: list[Any] = []

    @property
    def address(self) -> OpAddress:
        return self.operator.address

    def register_input(self, sender_key: Any) -> int:
        """Assign (or fetch) the input channel index for a sender."""
        index = self._channel_index.get(sender_key)
        if index is None:
            index = len(self._channel_senders)
            self._channel_index[sender_key] = index
            self._channel_senders.append(sender_key)
        return index

    def channel_index_of(self, sender_key: Any) -> int:
        return self._channel_index[sender_key]

    @property
    def input_channel_count(self) -> int:
        return len(self._channel_senders)

    @property
    def channel_senders(self) -> list[Any]:
        return list(self._channel_senders)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OperatorRuntime({self.address})"


def _client_key(job: str, stage: str, index: int) -> tuple:
    """Address of the ingestion client feeding a source operator."""
    return ("client", job, stage, index)


class StreamEngine:
    """Runs a set of jobs on a simulated cluster under one scheduler.

    ``policy`` overrides the policy named in the config with a custom
    :class:`~repro.core.policies.SchedulingPolicy` instance — the hook for
    user-defined priority generation (§5.4)."""

    def __init__(self, config: EngineConfig, jobs: list[JobSpec], policy=None):
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.config = config
        self.jobs = {j.name: j for j in jobs}
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        self.metrics = MetricsHub()
        self.channels = ChannelTable()
        noise = None
        if config.profile_noise_sigma > 0:
            noise = GaussianNoiseInjector(
                config.profile_noise_sigma, self.rng.stream("profile-noise")
            )
        self.profiler = CostProfiler(alpha=config.profiler_alpha, noise=noise)
        self.policy = policy or make_policy(config.policy, **config.policy_kwargs)
        self._contexts = config.contexts_enabled
        self._cost_rng = self.rng.stream("exec-cost")
        # hot-path caches of per-run-constant config values
        self._quantum = config.quantum
        self._switch_cost = config.switch_cost
        self._capacity = config.source_mailbox_capacity
        self._record_timeline = config.record_schedule_timeline
        self._record_completions = config.record_completion_timeline
        self._ingest_cache: dict = {}
        if config.network_jitter_sigma > 0:
            self._delay_model = JitteredDelay(
                self.rng.stream("network"),
                local=config.local_delay,
                remote=config.remote_delay,
                sigma=config.network_jitter_sigma,
            )
            # jittered transit draws from an RNG stream per call: delays
            # must be sampled at send time, never precomputed
            self._static_delay = False
        else:
            self._delay_model = ConstantDelay(
                local=config.local_delay, remote=config.remote_delay
            )
            self._static_delay = True
        self.nodes: list[Node] = [
            Node(node_id=i, run_queue=self._make_run_queue())
            for i in range(config.nodes)
        ]
        for node in self.nodes:
            node.workers = [
                Worker(node_id=node.node_id, local_id=w)
                for w in range(config.workers_per_node)
            ]
        self._ops: dict[OpAddress, OperatorRuntime] = {}
        self._client_converters: dict[tuple, ContextConverter] = {}
        self._build_operators()
        self._wire_edges()
        self._finalize_wiring()
        for job in jobs:
            self.metrics.register_job(job.name, job.group, job.latency_constraint)
        for op_rt in self._ops.values():
            op_rt.job_metrics = self.metrics.job(op_rt.job.name)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_run_queue(self) -> RunQueue:
        if self.config.scheduler == "cameo":
            return CameoRunQueue(
                clock=lambda: self.sim.now, aging=self.config.starvation_aging
            )
        if self.config.scheduler == "fifo":
            return FifoRunQueue()
        return OrleansRunQueue(self.config.workers_per_node)

    def _build_operators(self) -> None:
        addresses: list[OpAddress] = []
        for job in self.jobs.values():
            for stage_name in job.graph.stage_names:
                stage = job.graph.stage(stage_name)
                for index in range(stage.parallelism):
                    addresses.append(OpAddress(job.name, stage_name, index))
        placement = Placement(self.config.placement, self.config.nodes)
        node_of = placement.assign(addresses)
        for address in addresses:
            job = self.jobs[address.job]
            stage = job.graph.stage(address.stage)
            node_id = node_of[address]
            mailbox = self.nodes[node_id].run_queue.create_mailbox()
            converter = self._make_converter(job, stage) if self._contexts else None
            operator = stage.build_operator(job.name, address.index)
            self._ops[address] = OperatorRuntime(
                operator, stage, job, node_id, mailbox, converter
            )
            self.profiler.seed(address, stage.cost.nominal(0))

    def _make_converter(
        self, job: JobSpec, stage: Optional[StageSpec], source_index: int = 0
    ) -> ContextConverter:
        return ContextConverter(
            job_name=job.name,
            latency_constraint=job.latency_constraint,
            own_window=stage.window if stage is not None else None,
            policy=self.policy,
            progress_map=make_progress_map(job.time_domain, self.config.progress_window),
            use_query_semantics=self.config.use_query_semantics,
            source_index=source_index,
        )

    def _wire_edges(self) -> None:
        for job in self.jobs.values():
            graph = job.graph
            for src_name in graph.stage_names:
                src_stage = graph.stage(src_name)
                for dst_name in graph.downstream(src_name):
                    dst_stage = graph.stage(dst_name)
                    for src_index in range(src_stage.parallelism):
                        src_rt = self._ops[OpAddress(job.name, src_name, src_index)]
                        if dst_stage.key_partitioned:
                            targets = [
                                self._ops[OpAddress(job.name, dst_name, j)]
                                for j in range(dst_stage.parallelism)
                            ]
                        else:
                            j = src_index % dst_stage.parallelism
                            targets = [self._ops[OpAddress(job.name, dst_name, j)]]
                        src_rt.routes.append(
                            Route(dst_stage, targets, dst_stage.key_partitioned)
                        )
                        for target in targets:
                            target.register_input(src_rt.address)
            # ingestion clients feed every source operator
            for stage_name in graph.source_stages:
                stage = graph.stage(stage_name)
                for index in range(stage.parallelism):
                    key = _client_key(job.name, stage_name, index)
                    self._ops[OpAddress(job.name, stage_name, index)].register_input(key)
                    if self._contexts:
                        self._client_converters[key] = self._make_converter(
                            job, None, source_index=index
                        )

    def _finalize_wiring(self) -> None:
        for op_rt in self._ops.values():
            op_rt.operator.wire_inputs(max(1, op_rt.input_channel_count))
            if isinstance(op_rt.operator, WindowedJoinOperator):
                graph = op_rt.job.graph
                left_stage = graph.upstream(op_rt.stage.name)[0]
                sides = [
                    0 if getattr(sender, "stage", None) == left_stage else 1
                    for sender in op_rt.channel_senders
                ]
                op_rt.operator.set_channel_sides(sides)
            if op_rt.converter is not None:
                self._seed_converter(op_rt.converter, op_rt.job, op_rt.stage.name)
            # pre-resolve per-target delivery channels, channel indices and
            # (for constant delay models) the fixed transit delay
            for route in op_rt.routes:
                route.links = [
                    (
                        dst_rt,
                        self.channels.channel(op_rt.address, dst_rt.address),
                        dst_rt.channel_index_of(op_rt.address),
                        self._delay_model.delay(op_rt.node_id, dst_rt.node_id)
                        if self._static_delay
                        else None,
                    )
                    for dst_rt in route.targets
                ]
        for key, converter in self._client_converters.items():
            _, job_name, stage_name, _ = key
            job = self.jobs[job_name]
            # the client's "downstream" is the source stage itself
            converter.seed_reply_state(
                stage_name,
                job.graph.stage(stage_name).cost.nominal(0),
                job.graph.critical_path_cost(stage_name),
            )

    def _seed_converter(self, converter: ContextConverter, job: JobSpec, stage_name: str) -> None:
        for dst_name in job.graph.downstream(stage_name):
            converter.seed_reply_state(
                dst_name,
                job.graph.stage(dst_name).cost.nominal(0),
                job.graph.critical_path_cost(dst_name),
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def operator_runtime(self, address: OpAddress) -> OperatorRuntime:
        return self._ops[address]

    @property
    def operator_runtimes(self) -> list[OperatorRuntime]:
        return list(self._ops.values())

    def ingest(
        self,
        job_name: str,
        stage_name: str,
        source_index: int,
        logical_times,
        values=None,
        keys=None,
        sorted_times: bool = False,
    ) -> None:
        """Deliver a batch of external events to a source operator.

        For event-time jobs the given logical times are kept; for
        ingestion-time jobs the logical time of every event is the arrival
        instant (§4.3).  ``sorted_times`` asserts the given logical times
        are non-decreasing, enabling endpoint min/max on the hot path.
        """
        now = self.sim.now
        cached = self._ingest_cache.get((job_name, stage_name, source_index))
        if cached is None:
            job = self.jobs[job_name]
            src_rt = self._ops[OpAddress(job_name, stage_name, source_index)]
            key = _client_key(job_name, stage_name, source_index)
            converter = self._client_converters[key] if self._contexts else None
            channel = self.channels.channel(key, src_rt.address)
            cached = (
                job,
                src_rt,
                key,
                converter,
                channel,
                src_rt.channel_index_of(key),
                # clients are remote machines (node id -1 never matches)
                self._delay_model.delay(-1, src_rt.node_id)
                if self._static_delay
                else None,
            )
            self._ingest_cache[(job_name, stage_name, source_index)] = cached
        job, src_rt, key, converter, channel, channel_index, transit = cached
        count = len(logical_times)
        if job.time_domain == "ingestion":
            logical_times = np.full(count, now)
            sorted_times = True  # constant logical times
        batch = EventBatch(
            logical_times, values, keys, arrival_time=now, source_id=source_index,
            times_sorted=sorted_times,
        )
        progress = batch.max_logical_time
        pc = None
        if converter is not None:
            pc = converter.build(
                p=progress,
                t=now,
                now=now,
                target_stage=stage_name,
                target_window=src_rt.stage.window,
                tuple_count=count,
                at_source=True,
            )
        msg = Message(
            target=src_rt.address,
            batch=batch,
            p=progress,
            t=now,
            deps_arrival=now,
            sender=key,
            pc=pc,
            channel_index=channel_index,
        )
        src_rt.job_metrics.tuples_ingested += count
        if transit is None:
            # clients are remote machines (node id -1 never matches a node)
            transit = self._delay_model.delay(-1, src_rt.node_id)
        arrival = channel.deliver_time(now, transit)
        self.sim.schedule_at_fast(arrival, self._deliver, src_rt, msg, None)

    def run(self, until: float) -> None:
        """Run the simulation until the given time, then finalize metrics."""
        self.sim.run(until=until)
        for node in self.nodes:
            for worker in node.workers:
                self.metrics.record_worker_busy(
                    node.node_id, worker.local_id, worker.busy_time
                )

    # ------------------------------------------------------------------
    # elastic worker pools
    # ------------------------------------------------------------------

    def add_worker(self, node_id: int) -> Worker:
        """Grow a node's worker pool at the current simulation time."""
        node = self.nodes[node_id]
        worker = Worker(node_id=node_id, local_id=len(node.workers),
                        created_at=self.sim.now)
        node.workers.append(worker)
        if isinstance(node.run_queue, OrleansRunQueue):
            node.run_queue.add_worker_slot()
        self._wake_idle_worker(node)  # pick up any pending work immediately
        return worker

    def retire_worker(self, node_id: int) -> Optional[Worker]:
        """Shrink a node's pool: the last active worker finishes its current
        message and then stops.  Returns the retired worker, or None if the
        node is down to one active worker (never retire the last)."""
        node = self.nodes[node_id]
        active = [w for w in node.workers if not w.retired]
        if len(active) <= 1:
            return None
        worker = active[-1]
        worker.retired = True
        worker.retired_at = self.sim.now
        return worker

    def worker_seconds(self, horizon: float) -> float:
        """Total worker-seconds provisioned in [0, horizon] (cost proxy)."""
        return sum(
            w.lifetime(horizon) for node in self.nodes for w in node.workers
        )

    # ------------------------------------------------------------------
    # delivery and worker loop
    # ------------------------------------------------------------------

    def _deliver(
        self, op_rt: OperatorRuntime, msg: Message, producer: Optional[Worker]
    ) -> None:
        if op_rt.is_source:
            capacity = self._capacity
            if capacity is not None and (
                op_rt.blocked or len(op_rt.mailbox) >= capacity
            ):
                # ingestion back-pressure: hold the message in arrival order
                # until the source's mailbox drains below capacity
                op_rt.blocked.append(msg)
                op_rt.job_metrics.backpressure_events += 1
                return
            msg.enqueue_time = self.sim.now
            op_rt.mailbox.push(msg)
            job_metrics = op_rt.job_metrics
            size = len(op_rt.mailbox)
            if size > job_metrics.max_source_mailbox:
                job_metrics.max_source_mailbox = size
        else:
            msg.enqueue_time = self.sim.now
            op_rt.mailbox.push(msg)
        node = self.nodes[op_rt.node_id]
        hint = None
        if producer is not None and producer.node_id == op_rt.node_id:
            hint = producer.local_id
        node.run_queue.notify(op_rt, self.sim.now, hint)
        self._wake_idle_worker(node)

    def _wake_idle_worker(self, node: Node) -> None:
        worker = node.idle_worker()
        if worker is not None:
            worker.wake_scheduled = True
            self.sim.schedule_fast(0.0, self._worker_wake, worker)

    def _worker_wake(self, worker: Worker) -> None:
        worker.wake_scheduled = False
        if worker.idle:
            worker.idle = False
            self._worker_next(worker)

    def _worker_next(self, worker: Worker) -> None:
        sim = self.sim
        run_queue = self.nodes[worker.node_id].run_queue
        switch_cost = self._switch_cost
        while True:
            if worker.retired:
                worker.idle = True
                worker.current_op = None
                return
            op_rt = run_queue.pop(worker.local_id)
            if op_rt is None:
                worker.idle = True
                worker.current_op = None
                return
            op_rt.busy = True
            worker.current_op = op_rt
            worker.quantum_start = sim.now
            if switch_cost > 0 and worker.last_op is not op_rt:
                # activation switch penalty (cache refill / scheduling work)
                worker.switches += 1
                worker.busy_time += switch_cost
                worker.last_op = op_rt
                sim.schedule_fast(switch_cost, self._start_message, worker, op_rt)
                return
            worker.last_op = op_rt
            if not self._run_op(worker, op_rt):
                return
            # the operator was released inline (mailbox drained or requeued
            # at the quantum boundary): pop the next one without an event

    def _start_message(self, worker: Worker, op_rt: OperatorRuntime) -> None:
        """Entry point after a switch-cost delay: run the popped operator."""
        if self._run_op(worker, op_rt):
            self._worker_next(worker)

    def _run_op(self, worker: Worker, op_rt: OperatorRuntime) -> bool:
        """Run consecutive messages of ``op_rt`` on ``worker``.

        Quantum-batched execution: while the kernel can prove that no other
        pending event fires before a message's completion instant
        (:meth:`~repro.sim.kernel.Simulator.try_advance`), time is advanced
        inline and the completion handler runs without a heap round-trip —
        one kernel event per quantum instead of one per message.  Whenever
        the proof fails, the completion is scheduled exactly as before, so
        the observable event order is identical either way.

        Returns True when the worker released the operator (mailbox drained
        or requeued at the quantum boundary) and should pop its next one;
        False when a completion event was scheduled and control must return
        to the kernel.
        """
        sim = self.sim
        mailbox = op_rt.mailbox
        job_metrics = op_rt.job_metrics
        stage_name = op_rt.stage_name
        cost_model = op_rt.cost_model
        cost_rng = self._cost_rng
        quantum = self._quantum
        while True:
            now = sim.now
            msg = mailbox.pop()
            if op_rt.blocked:
                capacity = self._capacity
                if capacity is not None and len(mailbox) < capacity:
                    released = op_rt.blocked.popleft()
                    released.enqueue_time = now
                    mailbox.push(released)
            enqueue_time = msg.enqueue_time
            if enqueue_time == enqueue_time:  # not NaN
                queue_stat = op_rt.queue_stat
                if queue_stat is None:
                    queue_stat = job_metrics.queueing.get(stage_name)
                    if queue_stat is None:
                        queue_stat = RunningStat()
                        job_metrics.queueing[stage_name] = queue_stat
                    op_rt.queue_stat = queue_stat
                queue_stat.add(now - enqueue_time)
            pc = msg.pc
            if pc is not None and now > pc.deadline:
                job_metrics.start_violations += 1
            if self._record_timeline:
                self.metrics.record_timeline_point(
                    now, op_rt.job.name, stage_name, op_rt.address.index, msg.p
                )
            cost = cost_model.sample(msg.tuple_count, cost_rng)
            exec_stat = op_rt.exec_stat
            if exec_stat is None:
                exec_stat = job_metrics.execution.get(stage_name)
                if exec_stat is None:
                    exec_stat = RunningStat()
                    job_metrics.execution[stage_name] = exec_stat
                op_rt.exec_stat = exec_stat
            exec_stat.add(cost)
            if not sim.try_advance(now + cost):
                sim.schedule_fast(
                    cost, self._complete_message, worker, op_rt, msg, cost
                )
                return False
            # the kernel advanced to ``now + cost``: complete inline
            self._finish_message(worker, op_rt, msg, cost)
            if len(mailbox) == 0:
                op_rt.busy = False
                return True
            now = sim.now
            if now - worker.quantum_start >= quantum:
                run_queue = self.nodes[worker.node_id].run_queue
                if run_queue.should_swap(op_rt):
                    op_rt.busy = False
                    run_queue.requeue(op_rt, worker.local_id)
                    return True
                worker.quantum_start = now  # fresh quantum, same operator

    def _complete_message(
        self, worker: Worker, op_rt: OperatorRuntime, msg: Message, cost: float
    ) -> None:
        """Kernel-event completion path (when inline advance was refused)."""
        self._finish_message(worker, op_rt, msg, cost)
        if len(op_rt.mailbox) == 0:
            op_rt.busy = False
            self._worker_next(worker)
            return
        now = self.sim.now
        if now - worker.quantum_start >= self._quantum:
            run_queue = self.nodes[worker.node_id].run_queue
            if run_queue.should_swap(op_rt):
                op_rt.busy = False
                run_queue.requeue(op_rt, worker.local_id)
                self._worker_next(worker)
                return
            worker.quantum_start = now  # fresh quantum, same operator
        if self._run_op(worker, op_rt):
            self._worker_next(worker)

    def _finish_message(
        self, worker: Worker, op_rt: OperatorRuntime, msg: Message, cost: float
    ) -> None:
        """Everything that happens at a message's completion instant."""
        now = self.sim.now
        worker.busy_time += cost
        worker.messages_executed += 1
        job_metrics = op_rt.job_metrics
        job_metrics.messages_processed += 1
        self.metrics.total_messages += 1
        emissions = op_rt.operator.on_message(msg, now)
        batch = msg.batch
        if op_rt.is_sink and batch is not None and len(batch) > 0:
            job_metrics.record_output(
                now, now - msg.t, msg.tuple_count, float(batch.values.sum())
            )
        elif op_rt.is_source:
            count = msg.tuple_count
            job_metrics.tuples_processed += count
            job_metrics.source_events.append((now, count))
        if self._contexts:
            self.profiler.record(op_rt.address, cost)
            self._send_reply(op_rt, msg)
        if self._record_completions:
            self.metrics.completion_log.append(
                (now, op_rt.job.name, op_rt.stage_name, op_rt.address.index, msg.msg_id)
            )
        if emissions:
            self._route_emissions(op_rt, msg, emissions, worker)

    # ------------------------------------------------------------------
    # emission routing and reply contexts
    # ------------------------------------------------------------------

    def _route_emissions(
        self,
        src_rt: OperatorRuntime,
        trigger: Message,
        emissions: list[Emission],
        worker: Worker,
    ) -> None:
        for route in src_rt.routes:
            links = route.links
            if route.key_partitioned and len(links) > 1:
                parallelism = len(links)
                if parallelism == 2:
                    for emission in emissions:
                        batch = emission.batch
                        mask = batch.keys % 2 == 0
                        self._send(
                            src_rt, links[0], batch.select(mask),
                            emission, trigger, worker,
                        )
                        self._send(
                            src_rt, links[1], batch.select(~mask),
                            emission, trigger, worker,
                        )
                    continue
                for emission in emissions:
                    partition = emission.batch.keys % parallelism
                    for j, link in enumerate(links):
                        sub = emission.batch.select(partition == j)
                        self._send(src_rt, link, sub, emission, trigger, worker)
            else:
                for emission in emissions:
                    for link in links:
                        self._send(
                            src_rt, link, emission.batch, emission, trigger, worker
                        )

    def _send(
        self,
        src_rt: OperatorRuntime,
        link: tuple,
        batch: EventBatch,
        emission: Emission,
        trigger: Message,
        worker: Worker,
    ) -> None:
        dst_rt, channel, channel_index, transit = link
        if len(batch) == 0 and not dst_rt.stage.is_windowed:
            # only windowed operators consume progress heartbeats
            return
        now = self.sim.now
        pc: Optional[PriorityContext] = None
        converter = src_rt.converter
        if self._contexts and converter is not None:
            pc = converter.build(
                p=emission.progress,
                t=emission.arrival,
                now=now,
                target_stage=dst_rt.stage_name,
                target_window=dst_rt.stage.window,
                tuple_count=len(batch),
                inherited=trigger.pc,
                at_source=False,
            )
        out = Message(
            target=dst_rt.address,
            batch=batch,
            p=emission.progress,
            t=emission.arrival,
            deps_arrival=emission.arrival,
            sender=src_rt.address,
            pc=pc,
            channel_index=channel_index,
        )
        if transit is None:
            transit = self._delay_model.delay(src_rt.node_id, dst_rt.node_id)
        arrival = channel.deliver_time(now, transit)
        self.sim.schedule_at_fast(arrival, self._deliver, dst_rt, out, worker)

    def _send_reply(self, op_rt: OperatorRuntime, msg: Message) -> None:
        """PREPAREREPLY at ``op_rt`` → PROCESSCTXFROMREPLY at the sender.

        Acknowledgements carry no data and execute no operator logic, so
        they bypass the run queue; they still pay the network delay
        (Fig. 5a steps 5-6)."""
        if msg.kind is not MessageKind.DATA or msg.sender is None:
            return
        if op_rt.converter is None:
            return
        rc = op_rt.converter.prepare_reply(self.profiler.estimate(op_rt.address))
        rc.mailbox_size = len(op_rt.mailbox)
        enqueue_time = msg.enqueue_time
        if enqueue_time == enqueue_time:  # not NaN
            rc.queueing_delay = max(0.0, self.sim.now - enqueue_time)
        self.metrics.total_acks += 1
        sender = msg.sender
        route = op_rt.reply_cache.get(sender)
        if route is None:
            if isinstance(sender, tuple) and sender and sender[0] == "client":
                # clients are remote machines (node id -1 never matches)
                converter, dst_node = self._client_converters.get(sender), -1
            else:
                sender_rt = self._ops[sender]
                converter, dst_node = sender_rt.converter, sender_rt.node_id
            transit = (
                self._delay_model.delay(op_rt.node_id, dst_node)
                if self._static_delay
                else None
            )
            route = (converter, dst_node, transit)
            op_rt.reply_cache[sender] = route
        converter, dst_node, delay = route
        if delay is None:
            # jittered transit: drawn per reply, and always drawn before the
            # converter check so the RNG stream is independent of wiring
            delay = self._delay_model.delay(op_rt.node_id, dst_node)
        if converter is None:
            return
        self.sim.schedule_fast(delay, converter.process_reply, op_rt.stage_name, rc)

"""StreamEngine: the façade over the layered node runtime.

The engine used to be a monolith; it is now a thin composition root over
four collaborating layers (see ``docs/architecture.md``):

* :class:`~repro.runtime.topology.TopologyBuilder` — builds operators,
  places them, wires channels and converters, emits a
  :class:`~repro.runtime.topology.WiringPlan` (§5.2 / Fig. 5a),
* :class:`~repro.runtime.node.NodeRuntime` — one per node: worker pool,
  run queue, and the quantum-based dispatch loop (§5.2 / Fig. 5b),
* :class:`~repro.runtime.transport.Transport` — message delivery with
  per-channel FIFO order (§4.3), emission routing, RC acknowledgements,
* :class:`~repro.runtime.lifecycle.OperatorLifecycle` — dynamic
  reconfiguration: ``spawn`` / ``retire`` / ``rescale`` worker pools and
  live ``migrate`` of operators between nodes.

The constructor and :meth:`run` signatures are unchanged from the
monolithic engine, so experiments, benchmarks and the CLI are oblivious
to the split.  ``policy`` overrides the policy named in the config with a
custom :class:`~repro.core.policies.SchedulingPolicy` instance — the hook
for user-defined priority generation (§5.4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import make_policy
from repro.core.profiler import CostProfiler, GaussianNoiseInjector
from repro.core.shedding import DeadlineShedder
from repro.dataflow.jobs import JobSpec
from repro.dataflow.operators import OpAddress
from repro.metrics.collectors import MetricsHub
from repro.obs.introspect import SchedulerSampler
from repro.obs.recorder import TraceRecorder
from repro.runtime.config import EngineConfig
from repro.runtime.lifecycle import OperatorLifecycle
from repro.runtime.node import NodeRuntime, make_run_queue
from repro.runtime.recovery import (
    CheckpointManager,
    RecoveryManager,
    ReliableDelivery,
)
from repro.runtime.topology import (  # noqa: F401  (compat re-exports)
    OperatorRuntime,
    Route,
    TopologyBuilder,
    WiringPlan,
)
from repro.runtime.transport import Transport
from repro.runtime.workers import Worker
from repro.sim.faults import FaultInjector, FaultTimeline
from repro.sim.kernel import Simulator
from repro.sim.network import (
    BandwidthModel,
    ChannelTable,
    ConstantDelay,
    JitteredDelay,
)
from repro.sim.rng import RngRegistry


def make_engine(config: EngineConfig, jobs: list[JobSpec], policy=None):
    """Backend selector: the one place ``config.backend`` is dispatched on.

    ``"sim"`` (the default) returns the discrete-event :class:`StreamEngine`
    unchanged — sim runs stay bit-identical whether built directly or
    through this factory.  ``"mp"`` returns the process-backed
    :class:`~repro.runtime.mp.engine.MpStreamEngine` (imported lazily so
    the sim path never touches multiprocessing)."""
    if config.backend == "mp":
        from repro.runtime.mp.engine import MpStreamEngine

        return MpStreamEngine(config, jobs, policy=policy)
    return StreamEngine(config, jobs, policy=policy)


class StreamEngine:
    """Runs a set of jobs on a simulated cluster under one scheduler."""

    def __init__(self, config: EngineConfig, jobs: list[JobSpec], policy=None):
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.config = config
        self.jobs = {j.name: j for j in jobs}
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        self.metrics = MetricsHub()
        self.channels = ChannelTable()
        noise = None
        if config.profile_noise_sigma > 0:
            noise = GaussianNoiseInjector(
                config.profile_noise_sigma, self.rng.stream("profile-noise")
            )
        self.profiler = CostProfiler(alpha=config.profiler_alpha, noise=noise)
        self.policy = policy or make_policy(config.policy, **config.policy_kwargs)
        if config.network_jitter_sigma > 0:
            self._delay_model = JitteredDelay(
                self.rng.stream("network"),
                local=config.local_delay,
                remote=config.remote_delay,
                sigma=config.network_jitter_sigma,
            )
            # jittered transit draws from an RNG stream per call: delays
            # must be sampled at send time, never precomputed
            static_delay = False
        else:
            self._delay_model = ConstantDelay(
                local=config.local_delay, remote=config.remote_delay
            )
            static_delay = True

        clock = lambda: self.sim.now  # noqa: E731
        self.nodes: list[NodeRuntime] = [
            NodeRuntime(node_id=i, run_queue=make_run_queue(config, clock))
            for i in range(config.nodes)
        ]
        for node in self.nodes:
            node.workers = [
                Worker(node_id=node.node_id, local_id=w)
                for w in range(config.workers_per_node)
            ]

        builder = TopologyBuilder(
            config, self.jobs, self.policy, self.profiler,
            self.channels, self._delay_model, static_delay,
        )
        self.plan: WiringPlan = builder.build(self.nodes)
        self._ops = self.plan.ops
        self.transport = Transport(
            self.sim, self.nodes, self.plan, self.jobs, self.channels,
            self._delay_model, static_delay, self.metrics, self.profiler,
            config, builder,
        )
        # observability plane: installed only when asked for.  The recorder
        # is passive (never schedules, never touches an RNG) and the sampler
        # only performs order-preserving run-queue maintenance, so traced
        # runs stay bit-identical to untraced ones; with tracing off the
        # runtime holds no recorder at all and the hot path is unchanged.
        self.tracer: Optional[TraceRecorder] = None
        self._sampler: Optional[SchedulerSampler] = None
        if config.record_trace:
            self.tracer = TraceRecorder()
            self.transport.attach_tracer(self.tracer)
        # fault machinery: installed only for a non-empty schedule, so
        # fault-free runs stay bit-identical to runs without any schedule
        # (faults draw from their own named RNG substream, so even the
        # streams other components see are unchanged)
        schedule = config.fault_schedule
        self.fault_timeline: Optional[FaultTimeline] = None
        self.reliable: Optional[ReliableDelivery] = None
        self.recovery: Optional[RecoveryManager] = None
        self.fault_injector: Optional[FaultInjector] = None
        if schedule is not None and schedule.enabled:
            self.fault_timeline = FaultTimeline()
            self.fault_injector = FaultInjector(
                schedule, self.rng.stream("faults"), clock
            )
            nodes = self.nodes
            self.reliable = ReliableDelivery(
                self.sim, self.metrics, self.fault_injector, self._delay_model,
                node_down=lambda node_id: nodes[node_id].down,
                rto=config.retransmit_timeout,
                rto_cap=config.retransmit_backoff_cap,
            )
            self.reliable.attach(self.transport.deliver)
            self.transport.attach_reliable(self.reliable)
            if self.tracer is not None:
                self.reliable.attach_tracer(self.tracer)
        # shared-link bandwidth: installed only when a capacity is set, so
        # capacity-free runs keep a propagation-only transit path
        self.bandwidth: Optional[BandwidthModel] = None
        if config.link_capacity is not None:
            self.bandwidth = BandwidthModel(
                config.link_capacity, config.link_policy,
                bytes_per_tuple=config.link_bytes_per_tuple,
                metrics=self.metrics,
            )
            self.transport.attach_bandwidth(self.bandwidth)
            if self.reliable is not None:
                self.reliable.attach_bandwidth(self.bandwidth)
        shedder = DeadlineShedder(config.shed_slack) if config.shed_expired else None

        cost_rng = self.rng.stream("exec-cost")
        for node in self.nodes:
            node.bind(self.sim, self.metrics, self.profiler, cost_rng,
                      config, self.transport, faults=self.fault_injector,
                      reliable=self.reliable, shedder=shedder,
                      tracer=self.tracer)
        self.lifecycle = OperatorLifecycle(
            self.sim, self.nodes, self._ops, self.transport
        )
        for node in self.nodes:
            node.attach_lifecycle(self.lifecycle)
        # state recovery: installed only on top of the fault machinery and
        # only when asked for — ``state_recovery == "none"`` keeps the
        # legacy crash semantics (state rides the migration path) and the
        # checkpoint RNG substream untouched, so runs stay bit-identical
        self.checkpoints: Optional[CheckpointManager] = None
        if self.reliable is not None:
            self.recovery = RecoveryManager(
                self.sim, self.nodes, self._ops, self.lifecycle,
                self.reliable, self.metrics, self.fault_timeline,
                config.heartbeat_interval, config.failure_timeout,
                tracer=self.tracer, injector=self.fault_injector,
                # quorum machinery exists only when the schedule can cut
                # the fabric; partition-free schedules keep the legacy
                # omniscient detector (which trivially has quorum)
                partition_mode=(config.partition_failover
                                if schedule.has_partitions else None),
            )
            if config.state_recovery != "none":
                self.checkpoints = CheckpointManager(
                    self.sim, self._ops, self.reliable, self.metrics,
                    self.fault_timeline, self.rng.stream("checkpoints"),
                    config.checkpoint_interval, config.state_recovery,
                )
                self.recovery.attach_checkpoints(self.checkpoints)
                self.checkpoints.start(self.nodes)
            self.recovery.install(schedule)
        if self.tracer is not None:
            self._sampler = SchedulerSampler(
                self.sim, self.nodes, self.tracer,
                config.trace_sample_interval,
                ops=list(self._ops.values()),
            )
            self._sampler.start()

        for job in jobs:
            self.metrics.register_job(job.name, job.group, job.latency_constraint)
        for op_rt in self._ops.values():
            op_rt.job_metrics = self.metrics.job(op_rt.job.name)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def operator_runtime(self, address: OpAddress) -> OperatorRuntime:
        return self._ops[address]

    @property
    def operator_runtimes(self) -> list[OperatorRuntime]:
        return list(self._ops.values())

    def describe_topology(self) -> dict:
        """JSON-able dump of the live wiring: operators, placements,
        channels and reply routes (the ``repro topology`` subcommand)."""
        return self.plan.describe()

    def ingest(
        self,
        job_name: str,
        stage_name: str,
        source_index: int,
        logical_times,
        values=None,
        keys=None,
        sorted_times: bool = False,
    ) -> None:
        """Deliver a batch of external events to a source operator.

        See :meth:`repro.runtime.transport.Transport.ingest`."""
        self.transport.ingest(
            job_name, stage_name, source_index, logical_times,
            values=values, keys=keys, sorted_times=sorted_times,
        )

    def run(self, until: float) -> None:
        """Run the simulation until the given time, then finalize metrics."""
        self.sim.run(until=until)
        for node in self.nodes:
            for worker in node.workers:
                self.metrics.record_worker_busy(
                    node.node_id, worker.local_id, worker.busy_time
                )

    # ------------------------------------------------------------------
    # elastic worker pools (compat shims over the lifecycle API)
    # ------------------------------------------------------------------

    def add_worker(self, node_id: int) -> Worker:
        """Grow a node's worker pool (see :meth:`OperatorLifecycle.spawn`)."""
        return self.lifecycle.spawn(node_id)

    def retire_worker(self, node_id: int) -> Optional[Worker]:
        """Shrink a node's pool (see :meth:`OperatorLifecycle.retire`)."""
        return self.lifecycle.retire(node_id)

    def worker_seconds(self, horizon: float) -> float:
        """Total worker-seconds provisioned in [0, horizon] (cost proxy)."""
        return sum(
            w.lifetime(horizon) for node in self.nodes for w in node.workers
        )

"""Split-brain invariant checker: at most one live operator instance.

The quorum machinery in :mod:`repro.runtime.recovery` is designed so
that a partition can never leave two executing instances of the same
operator (the classic split-brain double-spawn): the minority side
fences itself *before* the majority declares it dead and takes its
operators over, and a fenced node executes nothing.  This module pins
that property after the fact, from artifacts every partition run
records anyway:

* the :class:`~repro.runtime.recovery.RecoveryManager`'s **ownership
  log** — ``(time, address, from_node, to_node, reason)`` per completed
  migration, anchored by the initial placement;
* its **fence log** — ``(time, node_id, "fence"|"unfence")``;
* the **completion log** — ``(time, job, stage, index, msg_id)`` per
  executed message (``record_completion_timeline`` runs).

``check_single_instance`` reconstructs each operator's single-owner
interval chain (the chain itself proves at most one owner at any sim
time — a break in it means two nodes both believed they hosted the
operator) and then sweeps the completion log: no message may complete
under an owner that was fenced or fail-stopped at that instant, except
at the fence boundary itself (an event already firing at the fence
instant ran before the sweep that fenced the node).

Note the invariant is deliberately *not* "msg_ids are unique": replay-
mode recovery legitimately re-executes messages after a rollback, so
duplicate msg_ids in the completion log are correct behaviour.  What
must never happen is execution on a host that has lost ownership.
"""

from __future__ import annotations

from bisect import bisect_right

INF = float("inf")


def ownership_intervals(recovery, until: float) -> dict:
    """``(job, stage, index) -> [(start, end, node_id), ...]`` chains.

    Raises ``AssertionError`` if a recorded move departs from a node
    that the chain says did not own the operator — two simultaneous
    owners, the bookkeeping half of a split brain.
    """
    chains: dict = {}
    cursor: dict = {}
    for addr, node in recovery.initial_ownership.items():
        key = (addr.job, addr.stage, addr.index)
        chains[key] = []
        cursor[key] = (0.0, node)
    for time, addr, src, dst, _reason in recovery.ownership_log:
        key = (addr.job, addr.stage, addr.index)
        start, node = cursor[key]
        assert node == src, (
            f"ownership chain broken for {key}: move at t={time} departs "
            f"node {src} but the chain says node {node} owned it"
        )
        chains[key].append((start, time, node))
        cursor[key] = (time, dst)
    for key, (start, node) in cursor.items():
        chains[key].append((start, until, node))
    return chains


def fence_intervals(fence_log, until: float) -> dict:
    """``node_id -> [(fence_start, fence_end), ...]`` windows."""
    windows: dict = {}
    open_at: dict = {}
    for time, node_id, kind in fence_log:
        if kind == "fence":
            open_at[node_id] = time
        else:
            start = open_at.pop(node_id, None)
            if start is not None:
                windows.setdefault(node_id, []).append((start, time))
    for node_id, start in open_at.items():
        windows.setdefault(node_id, []).append((start, until))
    return windows


def down_intervals(schedule) -> dict:
    """``node_id -> [(crash_start, crash_end), ...]`` from the schedule."""
    windows: dict = {}
    if schedule is None:
        return windows
    for crash in schedule.crashes:
        windows.setdefault(crash.node, []).append((crash.start, crash.end))
    return windows


def _owner_at(chain, time: float) -> int:
    """Owning node at ``time`` given one address's interval chain."""
    starts = [interval[0] for interval in chain]
    i = bisect_right(starts, time) - 1
    if i < 0:
        i = 0
    return chain[i][2]


def check_single_instance(engine) -> dict:
    """Assert the split-brain invariant over one finished engine run.

    Requires a partition-aware run with ``record_completion_timeline``
    on.  Returns a summary dict; raises ``AssertionError`` on the first
    violation found.
    """
    recovery = engine.recovery
    if recovery is None:
        raise ValueError("no recovery layer installed; nothing to check")
    until = engine.sim.now
    chains = ownership_intervals(recovery, until)
    fences = fence_intervals(recovery.fence_log, until)
    downs = down_intervals(engine.config.fault_schedule)
    checked = 0
    for time, job, stage, index, _msg_id in engine.metrics.completion_log:
        chain = chains.get((job, stage, index))
        if chain is None:
            continue  # operator outside the recovery layer's bookkeeping
        owner = _owner_at(chain, time)
        # strict interior: a completion already firing at the fence (or
        # crash) instant ran before the transition at the same sim time
        for start, end in fences.get(owner, ()):
            assert not (start < time < end), (
                f"completion of {job}/{stage}[{index}] at t={time} on node "
                f"{owner} inside its fence window [{start}, {end})"
            )
        for start, end in downs.get(owner, ()):
            assert not (start < time < end), (
                f"completion of {job}/{stage}[{index}] at t={time} on node "
                f"{owner} while that node was fail-stopped [{start}, {end})"
            )
        checked += 1
    return {
        "completions_checked": checked,
        "operators": len(chains),
        "moves": len(recovery.ownership_log),
        "fence_windows": sum(len(w) for w in fences.values()),
    }

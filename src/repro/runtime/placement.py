"""Operator placement strategies.

Placement decides which operators share a node's worker pool — the essence
of the multi-tenant setting.  ``round_robin`` interleaves all jobs'
operators across nodes (maximal collocation, the configuration the paper's
multi-tenant experiments stress); ``pack_by_job`` gives each job its own
node modulo the cluster size (closer to a slot-reserved deployment, used in
the Fig. 1 motivation experiment).
"""

from __future__ import annotations

from typing import Iterable

from repro.dataflow.operators import OpAddress

PLACEMENTS = ("round_robin", "pack_by_job", "single_node")


class Placement:
    """Maps every operator address to a node id, deterministically."""

    def __init__(self, strategy: str, node_count: int):
        if strategy not in PLACEMENTS:
            raise ValueError(f"unknown placement {strategy!r}; expected {PLACEMENTS}")
        if node_count < 1:
            raise ValueError("need at least one node")
        self._strategy = strategy
        self._node_count = node_count

    def assign(self, addresses: Iterable[OpAddress]) -> dict[OpAddress, int]:
        """Assign nodes to the given addresses (stable in input order)."""
        addresses = list(addresses)
        if self._strategy == "single_node":
            return {a: 0 for a in addresses}
        if self._strategy == "round_robin":
            return {a: i % self._node_count for i, a in enumerate(addresses)}
        # pack_by_job: all of a job's operators land on one node
        job_order: dict[str, int] = {}
        assignment = {}
        for address in addresses:
            if address.job not in job_order:
                job_order[address.job] = len(job_order)
            assignment[address] = job_order[address.job] % self._node_count
        return assignment

"""ProcessTransport: the transport surface inside one worker process.

Implements the same ingest / deliver / route_emissions / send_reply /
rewire surface as the simulated
:class:`~repro.runtime.transport.Transport`, but over real pipes: local
destinations are delivered by direct function call (in-process order *is*
per-channel FIFO), remote destinations go through the wall-clock reliable
layer into per-destination **outboxes** that :meth:`flush` ships as one
``DATA`` frame per destination per dispatch quantum — the amortized
batching that keeps the hot send path at one syscall per quantum instead
of one per message.

Ingestion entries carry a per-source sequence number and arrive either
from the local :class:`~repro.runtime.mp.ingest.IngestDriver`
(worker-ingest mode) or from the coordinator's ``INGEST`` frames
(coordinator-replay mode and fail-over shard replay); the transport
deduplicates replay overlap after a fail-over and reports per-source
processed watermarks back in heartbeats so the coordinator can trim its
durable ledger.

Every admission to a mailbox passes the per-channel FIFO audit: a
sequence number at or below the previously admitted one on the same
channel counts as a violation (the run reports the counter; it must stay
zero — in-order admission is enforced by the reliable layer's receiver).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.context import PriorityContext
from repro.dataflow.events import EventBatch
from repro.dataflow.messages import Message, MessageKind
from repro.dataflow.operators import Emission, OpAddress
from repro.runtime.mp.frames import DATA, send_frame
from repro.runtime.topology import OperatorRuntime


class ProcessTransport:
    """Routes messages for one worker process of the mp backend."""

    def __init__(self, node_id: int, plan, jobs: dict, config, metrics,
                 profiler, reliable, run_queue, clock):
        self._node_id = node_id
        self._ops = plan.ops
        self._jobs = jobs
        self._client_converters = plan.client_converters
        self._contexts = config.contexts_enabled
        self._capacity = config.source_mailbox_capacity
        self._metrics = metrics
        self._profiler = profiler
        self._reliable = reliable
        self._run_queue = run_queue
        self._clock = clock
        #: node_id -> pending wire entries (flushed as one frame each)
        self._outboxes: dict[int, list] = {}
        self._conns: dict = {}
        self._codecs: dict = {}
        #: per-source ingest bookkeeping:
        #: src_key -> [last_seen_seq, processed_watermark, out_of_order_set]
        self._ingest_state: dict[tuple, list] = {}
        #: per-channel FIFO audit: (sender, target) -> last admitted seq
        self._audit: dict[tuple, int] = {}
        self.fifo_violations = 0
        #: span recorder (None = tracing off: zero hot-path residue)
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Install the worker's span recorder (observability plane)."""
        self._tracer = tracer

    def attach_conns(self, conns: dict, codecs: dict | None = None) -> None:
        """Bind the peer connections (node_id -> Connection).

        ``codecs`` maps peers to their :class:`~repro.runtime.mp.frames.
        DataCodec`; destinations with one flush compact binary DATA
        frames, destinations without fall back to pickled frames (tests
        exercising the transport over bare pipes)."""
        self._conns = conns
        self._codecs = codecs or {}

    # ------------------------------------------------------------------
    # ingestion (coordinator -> source operator)
    # ------------------------------------------------------------------

    def on_ingest(self, entries: list) -> None:
        """Admit a batch of replayed ingest entries to local sources."""
        for src_key, seq, trace_time, logical_times, values, keys, sorted_times in entries:
            state = self._ingest_state.get(src_key)
            if state is None:
                state = [-1, seq - 1, set()]
                self._ingest_state[src_key] = state
            if seq <= state[0]:
                # replay overlap after a fail-over: already seen
                self._metrics.duplicates_dropped += 1
                continue
            state[0] = seq
            self._ingest(src_key, seq, trace_time, logical_times, values,
                         keys, sorted_times)

    def _ingest(self, src_key: tuple, seq: int, trace_time: float,
                logical_times, values, keys, sorted_times: bool) -> None:
        _, job_name, stage_name, source_index = src_key
        now = self._clock()
        job = self._jobs[job_name]
        src_rt = self._ops[OpAddress(job_name, stage_name, source_index)]
        count = len(logical_times)
        if job.time_domain == "ingestion":
            # determinism choice (see docs): the *logical* clock of an
            # ingestion-time job is the replayed trace time, so window
            # contents are bit-identical to the sim backend; the *physical*
            # anchor (t / arrival) is the wall clock, so latencies are real
            logical_times = np.full(count, trace_time)
            sorted_times = True
        batch = EventBatch(
            logical_times, values, keys, arrival_time=now,
            source_id=source_index, times_sorted=sorted_times,
        )
        progress = batch.max_logical_time
        pc = None
        converter = self._client_converters.get(src_key) if self._contexts else None
        if converter is not None:
            pc = converter.build(
                p=progress, t=now, now=now, target_stage=stage_name,
                target_window=src_rt.stage.window, tuple_count=count,
                at_source=True,
            )
        msg = Message(
            target=src_rt.address, batch=batch, p=progress, t=now,
            deps_arrival=now, sender=src_key, pc=pc,
            channel_index=src_rt.channel_index_of(src_key),
        )
        msg.seq = seq
        src_rt.job_metrics.tuples_ingested += count
        if self._tracer is not None:
            # ingested root: sent at the ingest instant, no parent
            self._tracer.on_send(msg, -1, now)
        self.deliver(src_rt, msg)

    def note_source_processed(self, op_rt: OperatorRuntime, msg: Message) -> None:
        """Advance the per-source ingest watermark (contiguous processed)."""
        state = self._ingest_state.get(msg.sender)
        if state is None:
            return
        seq = msg.seq
        if seq == state[1] + 1:
            state[1] = seq
            out_of_order = state[2]
            while state[1] + 1 in out_of_order:
                state[1] += 1
                out_of_order.remove(state[1])
        else:
            state[2].add(seq)

    def ingest_acks(self) -> dict:
        """src_key -> contiguous processed ingest watermark (heartbeats)."""
        return {key: state[1] for key, state in self._ingest_state.items()}

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def deliver(self, op_rt: OperatorRuntime, msg: Message) -> None:
        now = self._clock()
        if msg.seq != -1:
            channel = (msg.sender, msg.target)
            last = self._audit.get(channel, -1)
            if msg.seq <= last:
                self.fifo_violations += 1
            self._audit[channel] = msg.seq
        if op_rt.is_source:
            capacity = self._capacity
            if capacity is not None and (
                op_rt.blocked or len(op_rt.mailbox) >= capacity
            ):
                op_rt.blocked.append(msg)
                op_rt.job_metrics.backpressure_events += 1
                return
            msg.enqueue_time = now
            op_rt.mailbox.push(msg)
            job_metrics = op_rt.job_metrics
            size = len(op_rt.mailbox)
            if size > job_metrics.max_source_mailbox:
                job_metrics.max_source_mailbox = size
        else:
            msg.enqueue_time = now
            op_rt.mailbox.push(msg)
        if self._tracer is not None:
            # same instant as enqueue_time, so wait = started - admitted
            self._tracer.on_admit(msg, now)
        self._run_queue.notify(op_rt, now, None)

    def on_entries(self, entries: list) -> None:
        """Handle one incoming ``DATA`` frame's entries."""
        reliable = self._reliable
        for entry in entries:
            tag = entry[0]
            if tag == "msg":
                for msg in reliable.on_data(entry[1]):
                    self.deliver(self._ops[msg.target], msg)
            elif tag == "ack":
                reliable.on_ack(entry[1], entry[2], entry[3])
            elif tag == "reply":
                _, sender, replier_stage, rc = entry
                converter = self._ops[sender].converter
                if converter is not None:
                    converter.process_reply(replier_stage, rc)
            elif tag == "reset":
                _, key, base_seq = entry
                reliable.install_reset(key, base_seq)
                self._audit.pop(key, None)

    # ------------------------------------------------------------------
    # emission routing
    # ------------------------------------------------------------------

    def route_emissions(self, src_rt: OperatorRuntime, trigger: Message,
                        emissions: list[Emission]) -> None:
        for route in src_rt.routes:
            links = route.links
            if route.active != len(links):
                # stage rescale: only the leading ``active`` instances
                # receive data; keys repartition modulo the active count
                links = links[: route.active]
            if route.key_partitioned and len(links) > 1:
                parallelism = len(links)
                for emission in emissions:
                    partition = emission.batch.keys % parallelism
                    for j, link in enumerate(links):
                        sub = emission.batch.select(partition == j)
                        self._send(src_rt, link, sub, emission, trigger)
            else:
                for emission in emissions:
                    for link in links:
                        self._send(src_rt, link, emission.batch, emission, trigger)

    def _send(self, src_rt: OperatorRuntime, link: tuple, batch: EventBatch,
              emission: Emission, trigger: Message) -> None:
        dst_rt = link[0]
        if len(batch) == 0 and not dst_rt.stage.is_windowed:
            # only windowed operators consume progress heartbeats
            return
        now = self._clock()
        pc: Optional[PriorityContext] = None
        converter = src_rt.converter
        if self._contexts and converter is not None:
            pc = converter.build(
                p=emission.progress, t=emission.arrival, now=now,
                target_stage=dst_rt.stage_name,
                target_window=dst_rt.stage.window,
                tuple_count=len(batch), inherited=trigger.pc, at_source=False,
            )
        out = Message(
            target=dst_rt.address, batch=batch, p=emission.progress,
            t=emission.arrival, deps_arrival=emission.arrival,
            sender=src_rt.address, pc=pc, channel_index=link[2],
        )
        if self._tracer is not None:
            self._tracer.on_send(out, trigger.msg_id, now)
        if dst_rt.node_id == self._node_id:
            # in-process call order preserves per-channel FIFO directly
            self.deliver(dst_rt, out)
            return
        self._reliable.send(out)
        self._outbox(dst_rt.node_id).append(("msg", out))

    # ------------------------------------------------------------------
    # reply contexts
    # ------------------------------------------------------------------

    def send_reply(self, op_rt: OperatorRuntime, msg: Message) -> None:
        """PREPAREREPLY at ``op_rt`` → PROCESSCTXFROMREPLY at the sender."""
        if msg.kind is not MessageKind.DATA or msg.sender is None:
            return
        if op_rt.converter is None:
            return
        rc = op_rt.converter.prepare_reply(self._profiler.estimate(op_rt.address))
        rc.mailbox_size = len(op_rt.mailbox)
        enqueue_time = msg.enqueue_time
        if enqueue_time == enqueue_time:  # not NaN
            rc.queueing_delay = max(0.0, self._clock() - enqueue_time)
        self._metrics.total_acks += 1
        if self._tracer is not None:
            self._tracer.on_reply(msg, self._clock())
        sender = msg.sender
        if isinstance(sender, tuple) and sender and sender[0] == "client":
            # the client converter that built this source's PCs lives in
            # this very process (it moves with the source on fail-over)
            converter = self._client_converters.get(sender)
            if converter is not None:
                converter.process_reply(op_rt.stage_name, rc)
            return
        sender_rt = self._ops[sender]
        if sender_rt.node_id == self._node_id:
            if sender_rt.converter is not None:
                sender_rt.converter.process_reply(op_rt.stage_name, rc)
            return
        self._outbox(sender_rt.node_id).append(("reply", sender, op_rt.stage_name, rc))

    # ------------------------------------------------------------------
    # outboxes
    # ------------------------------------------------------------------

    def _outbox(self, node_id: int) -> list:
        outbox = self._outboxes.get(node_id)
        if outbox is None:
            outbox = []
            self._outboxes[node_id] = outbox
        return outbox

    def enqueue_retransmits(self, replays: list[Message]) -> None:
        for msg in replays:
            self._outbox(self._ops[msg.target].node_id).append(("msg", msg))

    def flush(self) -> None:
        """Ship every pending entry: one ``DATA`` frame per destination.

        Cumulative acks are coalesced per channel and piggybacked on the
        same frame as data heading to the channel's sender."""
        for key, admitted, processed in self._reliable.drain_acks():
            sender = key[0]
            if isinstance(sender, tuple) and sender and sender[0] == "client":
                continue  # client acks travel in heartbeats
            self._outbox(self._ops[sender].node_id).append(
                ("ack", key, admitted, processed)
            )
        for node_id, entries in self._outboxes.items():
            if not entries:
                continue
            conn = self._conns.get(node_id)
            if conn is not None:
                try:
                    codec = self._codecs.get(node_id)
                    if codec is not None:
                        conn.send_bytes(codec.encode_data(entries))
                    else:
                        send_frame(conn, DATA, entries)
                except (BrokenPipeError, OSError):
                    # peer died mid-run: drop the frame — every message in
                    # it sits in a go-back-N send buffer and replays to the
                    # survivor once the coordinator's REWIRE lands; acks
                    # for a dead sender have no one left to care
                    pass
            self._outboxes[node_id] = []

    def pending_output(self) -> bool:
        return any(self._outboxes.values())

    # ------------------------------------------------------------------
    # reconfiguration (fail-over)
    # ------------------------------------------------------------------

    def rewire(self, mapping: dict) -> None:
        """Apply a coordinator-announced re-placement after a failure.

        Updates the local placement view, re-incarnates sender channels
        into moved operators (reset + replay from the processed
        watermark), and forgets receiver state of channels whose sender
        was reborn elsewhere (the new incarnation restarts its sequence
        space)."""
        moved = set(mapping)
        for address, node_id in mapping.items():
            self._ops[address].node_id = node_id
        reliable = self._reliable
        for key in reliable.sender_channels_to(moved):
            reset = reliable.reset_sender(key)
            if reset is None:
                continue
            base_seq, replays = reset
            self._audit.pop(key, None)
            new_node = self._ops[key[1]].node_id
            if new_node == self._node_id:
                # the receiver was reborn on *this* node: the channel
                # collapsed to a local edge, which needs no acks — deliver
                # the unprocessed suffix directly and drop the channel
                for msg in replays:
                    self.deliver(self._ops[msg.target], msg)
                reliable.forget_sender(key)
                continue
            outbox = self._outbox(new_node)
            outbox.append(("reset", key, base_seq))
            for msg in replays:
                outbox.append(("msg", msg))
        reliable.drop_receivers_from(moved)
        for key in [k for k in self._audit if k[0] in moved or k[1] in moved]:
            del self._audit[key]

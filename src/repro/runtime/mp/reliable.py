"""Wall-clock reliable delivery for the process backend.

The same state machine as the simulated
:class:`~repro.runtime.recovery.ReliableDelivery` — per-channel sequence
numbers, cumulative ``(admitted, processed)`` acknowledgements, in-order
admission with out-of-order buffering, duplicate suppression, and
go-back-N retransmission under capped exponential backoff — but driven by
the wall clock and split across processes: the sender half lives in the
producing worker, the receiver half in the consuming worker, and the two
exchange information only through ``DATA`` frame entries.

There is no event heap in a worker, so retransmit timers are polled: the
dispatch loop calls :meth:`due_retransmits` every iteration and bounds its
idle wait by :meth:`next_deadline`.

A channel is identified by ``(msg.sender, msg.target)`` — exactly the key
the simulated layer uses — so the per-channel FIFO guarantee (§4.3) is
enforced end to end: the receiver admits messages to mailboxes strictly
in sequence order, and every admission asserts ``seq == next_admit``
(:attr:`fifo_violations` counts violations; it must stay zero).

Loss injection (``mp_loss_rate``) drops incoming data entries *before*
the receiver half sees them, simulating a lossy network over the real
(reliable, FIFO) pipes — the knob that lets tests prove the go-back-N
path works across real process boundaries.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dataflow.messages import Message


class _SenderState:
    """Sender half of one channel (lives in the producing process).

    Invariant (same as the sim layer): ``unacked`` holds exactly the
    contiguous range ``(processed_w, next_seq)``."""

    __slots__ = (
        "next_seq", "unacked", "admitted_w", "processed_w",
        "rto", "deadline", "retransmit_count",
    )

    def __init__(self, rto: float):
        self.next_seq = 0
        self.unacked: dict[int, Message] = {}
        self.admitted_w = -1
        self.processed_w = -1
        self.rto = rto
        self.deadline: Optional[float] = None  # armed retransmit instant
        self.retransmit_count = 0

    def needs_retransmit(self) -> bool:
        return self.next_seq - 1 > self.admitted_w and bool(self.unacked)


class _ReceiverState:
    """Receiver half of one channel (lives in the consuming process)."""

    __slots__ = ("next_admit", "watermark", "processed", "pending")

    def __init__(self):
        self.next_admit = 0
        self.watermark = -1
        self.processed: set[int] = set()
        self.pending: dict[int, Message] = {}


class MpReliableDelivery:
    """Both halves of every reliable channel one worker participates in."""

    def __init__(self, clock: Callable[[], float], rto: float, rto_cap: float,
                 metrics, loss_rate: float = 0.0, loss_rng=None):
        if rto <= 0 or rto_cap < rto:
            raise ValueError("need 0 < rto <= rto_cap")
        self._clock = clock
        self._rto_initial = rto
        self._rto_cap = rto_cap
        self._metrics = metrics
        self._loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._senders: dict[tuple, _SenderState] = {}
        self._receivers: dict[tuple, _ReceiverState] = {}
        #: channels whose cumulative ack changed since the last drain
        self._ack_dirty: set[tuple] = set()
        #: admissions where seq != next_admit (must stay 0; see module doc)
        self.fifo_violations = 0
        #: span recorder (None = tracing off: zero hot-path residue)
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Install the worker's span recorder (observability plane)."""
        self._tracer = tracer

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def _sender(self, key: tuple) -> _SenderState:
        state = self._senders.get(key)
        if state is None:
            state = _SenderState(self._rto_initial)
            self._senders[key] = state
        return state

    def send(self, msg: Message) -> Message:
        """Assign the channel sequence number and retain for retransmit."""
        state = self._sender((msg.sender, msg.target))
        msg.seq = state.next_seq
        state.next_seq += 1
        state.unacked[msg.seq] = msg
        if state.deadline is None:
            state.deadline = self._clock() + state.rto
        if self._tracer is not None:
            self._tracer.on_transmit(msg, self._clock())
        return msg

    def on_ack(self, key: tuple, admitted: int, processed: int) -> None:
        state = self._senders.get(key)
        if state is None:
            return
        progressed = False
        if processed > state.processed_w:
            for seq in range(state.processed_w + 1, processed + 1):
                state.unacked.pop(seq, None)
            state.processed_w = processed
            progressed = True
        if admitted > state.admitted_w:
            state.admitted_w = admitted
            progressed = True
        if progressed:
            # fresh news: restart the backoff clock
            state.rto = self._rto_initial
            state.deadline = (
                self._clock() + state.rto if state.needs_retransmit() else None
            )

    def due_retransmits(self, now: float) -> list[Message]:
        """Go-back-N replays for every channel whose timer expired.

        Doubles the channel's RTO (capped) and re-arms.  The caller
        enqueues the returned messages on the appropriate outboxes."""
        replays: list[Message] = []
        for state in self._senders.values():
            if state.deadline is None or now < state.deadline:
                continue
            if not state.needs_retransmit():
                state.rto = self._rto_initial
                state.deadline = None
                continue
            tracer = self._tracer
            for seq in range(state.admitted_w + 1, state.next_seq):
                msg = state.unacked.get(seq)
                if msg is not None:
                    state.retransmit_count += 1
                    self._metrics.retransmissions += 1
                    if tracer is not None:
                        # stall since the last wire attempt, then the
                        # replay itself becomes the new last attempt
                        tracer.on_retransmit(msg, now)
                        tracer.on_transmit(msg, now)
                    replays.append(msg)
            state.rto = min(state.rto * 2.0, self._rto_cap)
            state.deadline = now + state.rto
        return replays

    def next_deadline(self) -> Optional[float]:
        """Earliest armed retransmit instant (bounds the idle wait)."""
        deadlines = [
            s.deadline for s in self._senders.values() if s.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def reset_sender(self, key: tuple) -> Optional[tuple[int, list[Message]]]:
        """Fail-over: the channel's receiver died with its node.

        Rolls delivery knowledge back to the processed watermark (admitted
        -but-unprocessed messages died in the lost mailboxes) and returns
        ``(base_seq, replays)``: the new admission base the caller must
        announce to the operator's new home with a ``reset`` entry, and
        the unprocessed suffix to replay after it."""
        state = self._senders.get(key)
        if state is None:
            return None
        state.admitted_w = state.processed_w
        state.rto = self._rto_initial
        state.deadline = self._clock() + state.rto if state.needs_retransmit() else None
        replays = [
            state.unacked[seq]
            for seq in range(state.processed_w + 1, state.next_seq)
            if seq in state.unacked
        ]
        return state.processed_w + 1, replays

    def sender_channels_to(self, targets: set) -> list[tuple]:
        """Channel keys whose destination operator is in ``targets``."""
        return [key for key in self._senders if key[1] in targets]

    def forget_sender(self, key: tuple) -> None:
        """Drop a sender channel entirely (it collapsed to a local edge
        after a fail-over moved its receiver onto this very node)."""
        self._senders.pop(key, None)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def _receiver(self, key: tuple) -> _ReceiverState:
        state = self._receivers.get(key)
        if state is None:
            state = _ReceiverState()
            self._receivers[key] = state
        return state

    def on_data(self, msg: Message) -> list[Message]:
        """One incoming data entry; returns messages admitted *in order*.

        Applies loss injection first (the simulated lossy network), then
        the same dedupe / in-order admission logic as the sim layer."""
        if self._loss_rate > 0 and self._loss_rng.random() < self._loss_rate:
            self._metrics.messages_lost_network += 1
            return []
        key = (msg.sender, msg.target)
        state = self._receiver(key)
        seq = msg.seq
        if seq <= state.watermark or seq in state.processed:
            self._metrics.duplicates_dropped += 1
            self._ack_dirty.add(key)  # refresh the sender's cumulative view
            return []
        if seq < state.next_admit:
            # already sitting in the mailbox awaiting processing
            self._metrics.duplicates_dropped += 1
            return []
        if seq != state.next_admit:
            state.pending[seq] = msg  # out of order: hold for the gap
            return []
        admitted = [msg]
        state.next_admit = seq + 1
        while True:
            nxt = state.next_admit
            if nxt in state.processed:
                state.next_admit = nxt + 1  # processed before a reset
            elif nxt in state.pending:
                admitted.append(state.pending.pop(nxt))
                state.next_admit = nxt + 1
            else:
                break
        self._ack_dirty.add(key)
        return admitted

    def install_reset(self, key: tuple, base_seq: int) -> None:
        """A sender re-incarnated the channel (fail-over): admit from
        ``base_seq``, treating everything below it as processed."""
        state = self._receiver(key)
        state.pending.clear()
        state.processed.clear()
        state.next_admit = base_seq
        state.watermark = base_seq - 1
        self._ack_dirty.add(key)

    def drop_receivers_from(self, senders: set) -> None:
        """Forget receiver state of channels whose *sender* operator died:
        the reborn sender starts a fresh sequence space."""
        for key in [k for k in self._receivers if k[0] in senders]:
            del self._receivers[key]
            self._ack_dirty.discard(key)

    def on_processed(self, msg: Message) -> None:
        """Final disposition of a message (executed or dropped)."""
        state = self._receivers.get((msg.sender, msg.target))
        if state is None:
            return
        seq = msg.seq
        if seq == state.watermark + 1:
            state.watermark = seq
            processed = state.processed
            while state.watermark + 1 in processed:
                state.watermark += 1
                processed.remove(state.watermark)
        else:
            state.processed.add(seq)
        self._ack_dirty.add((msg.sender, msg.target))

    def drain_acks(self) -> list[tuple]:
        """Coalesced cumulative acks since the last drain: one
        ``(channel_key, admitted, processed)`` triple per dirty channel."""
        acks = []
        for key in self._ack_dirty:
            state = self._receivers.get(key)
            if state is not None:
                acks.append((key, state.next_admit - 1, state.watermark))
        self._ack_dirty.clear()
        return acks

    # -- introspection -------------------------------------------------

    def idle(self) -> bool:
        """No unacked sends, no buffered receives, no pending acks."""
        return (
            all(not s.unacked for s in self._senders.values())
            and all(not r.pending for r in self._receivers.values())
            and not self._ack_dirty
        )

    def outstanding_total(self) -> int:
        """Unacked in-flight messages across all sender channels (the
        telemetry bus's retransmit-pressure sensor)."""
        return sum(len(s.unacked) for s in self._senders.values())

    @property
    def channel_count(self) -> int:
        return len(self._senders) + len(self._receivers)

"""MpStreamEngine: drop-in engine façade for the process backend.

Runs the same two phases every mp run needs:

1. **Capture** — the engine exposes the duck-typed surface the source
   drivers use (``.sim`` as a bare event kernel, ``.rng`` as the named
   substream registry, ``.ingest`` as the recorder), so unchanged
   :class:`~repro.workloads.arrivals.SourceDriver` machinery produces a
   bit-identical ingest trace to what the sim backend would have fed its
   transport: same arrival instants, same batch contents, same order.
2. **Replay** — :class:`~repro.runtime.mp.coordinator.MpCoordinator`
   sequences the trace (per-source seqs), forks the workers and replays
   it, paced against the wall clock (``mp_realtime=True``) or flooded as
   fast as the workers drain it (benchmarks).  Replay location is
   ``mp_ingest_mode``: ``"worker"`` shards the trace by source owner and
   each worker's :class:`~repro.runtime.mp.ingest.IngestDriver` replays
   its fork-inherited shard locally (coordinator = pure control plane);
   ``"coordinator"`` streams every entry through ``INGEST`` frames.

After :meth:`run`, ``.metrics`` holds the merged
:class:`~repro.metrics.collectors.MetricsHub` of every worker and
``.info`` the run's transport-level facts (wall time, per-worker stats,
FIFO-audit counters, survivor set).  With the observability plane on
(``record_trace`` / ``mp_telemetry``), ``.tracer`` holds the merged
cross-process :class:`~repro.obs.recorder.TraceRecorder`, ``.telemetry``
the folded :class:`~repro.obs.telemetry.TelemetryLog`, ``.clock`` the
:class:`~repro.obs.merge.ClockSync`, and ``.process_map`` real worker
pids for the Perfetto exporter — the same downstream surface the sim
engine exposes, so exporters, schema validation and attribution run
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.jobs import JobSpec
from repro.metrics.collectors import MetricsHub
from repro.runtime.config import EngineConfig
from repro.runtime.mp.coordinator import MpCoordinator
from repro.runtime.topology import client_key
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class MpStreamEngine:
    """Runs a set of jobs on real worker processes (``backend="mp"``)."""

    def __init__(self, config: EngineConfig, jobs: list[JobSpec], policy=None):
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        if config.backend != "mp":
            raise ValueError(f"MpStreamEngine needs backend='mp', got {config.backend!r}")
        self.config = config
        self.jobs = {j.name: j for j in jobs}
        self._job_list = list(jobs)
        self._policy = policy
        # capture surface: drivers schedule on .sim and call .ingest
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        self.metrics: MetricsHub = MetricsHub()
        self.info: dict = {}
        #: observability surface (None unless the obs plane is on)
        self.tracer = None
        self.telemetry = None
        self.clock = None
        self.process_map: dict | None = None
        self.fault_timeline = None
        self._trace: list[tuple] = []
        self._kills: list[tuple[float, int]] = []
        self._rescales: list[tuple[float, str, str, int]] = []
        self._ran = False

    def ingest(
        self,
        job_name: str,
        stage_name: str,
        source_index: int,
        logical_times,
        values=None,
        keys=None,
        sorted_times: bool = False,
    ) -> None:
        """Record one ingest batch at the current capture-clock instant."""
        if job_name not in self.jobs:
            raise KeyError(f"unknown job {job_name!r}")
        self._trace.append((
            self.sim.now,
            client_key(job_name, stage_name, source_index),
            np.asarray(logical_times, dtype=np.float64),
            None if values is None else np.asarray(values),
            None if keys is None else np.asarray(keys),
            sorted_times,
        ))

    def kill_at(self, node_id: int, when: float) -> None:
        """Schedule a hard kill of a worker process (fail-over tests)."""
        if not 0 <= node_id < self.config.nodes:
            raise ValueError(f"node {node_id} out of range")
        self._kills.append((when, node_id))

    def rescale_stage_at(self, when: float, job_name: str, stage_name: str,
                         parallelism: int) -> None:
        """Schedule a key-partitioned stage rescale at wall time ``when``.

        The coordinator announces it with a ``RESCALE`` frame; the worker
        applies it at its next quiescent point for the stage (empty stage
        mailboxes), splitting/merging every instance's state store by the
        new key partition — the process-backend analogue of
        ``OperatorLifecycle.rescale_stage``.  Single-node runs only: with
        the whole topology in one process, state moves by reference; a
        cross-process state transfer protocol is future work."""
        if self.config.nodes != 1:
            raise ValueError(
                "stage rescale on the mp backend needs nodes=1 (state "
                "moves within one process)"
            )
        if job_name not in self.jobs:
            raise KeyError(f"unknown job {job_name!r}")
        self._rescales.append((when, job_name, stage_name, parallelism))

    @property
    def trace_length(self) -> int:
        return len(self._trace)

    def run(self, until: float) -> None:
        """Capture the ingest trace up to ``until``, then replay it for real."""
        if self._ran:
            raise RuntimeError("an MpStreamEngine run is single-shot")
        self._ran = True
        self.sim.run(until=until)
        coordinator = MpCoordinator(
            self.config, self._job_list, self._policy, self._trace,
            kills=self._kills, rescales=self._rescales, until=until,
        )
        self.metrics = coordinator.run()
        self.info = coordinator.info
        self.tracer = coordinator.tracer
        self.telemetry = coordinator.telemetry
        self.clock = coordinator.clock
        if self.clock is not None:
            self.process_map = {
                node: {"pid": pid, "name": f"worker {node} (pid {pid})"}
                for node, pid in self.clock.pids.items()
            }
        if self._kills:
            from repro.sim.faults import FaultTimeline

            timeline = FaultTimeline()
            for when, node_id in sorted(self._kills):
                timeline.record(when, "crash", f"node {node_id} killed")
            for node_id, crash, detect in self.metrics.failure_detections:
                timeline.record(
                    detect, "failover",
                    f"node {node_id} declared dead (crashed ~{crash:.3f}s)",
                )
            self.fault_timeline = timeline

"""Coordinator of the mp backend: spawn, watch, collect — and feed only
when it must.

The coordinator is the parent process.  It creates the full pipe mesh
(coordinator <-> worker plus worker <-> worker, all before forking so
every process inherits its ends), forks one worker per configured node,
watches heartbeats for failures, and finally collects and merges every
worker's :class:`~repro.metrics.collectors.MetricsHub`.

In the default worker-ingest mode (``mp_ingest_mode="worker"``) each
worker inherits its shard of the sequenced trace through fork and replays
it locally, so the coordinator is **pure control plane**: no data ever
flows through the parent during normal operation.  In coordinator-replay
mode (``"coordinator"``) the parent streams every entry through
``INGEST`` frames, paced or flooded.  With ``mp_cost_mode="spin"`` a
calibration barrier sits between READY and START: the coordinator
broadcasts ``CALIBRATE`` once every worker is up, and starts the epoch
only after every ``CAL_DONE`` — forcing the per-worker spin-rate
measurements to overlap so they price in deployment-level CPU contention.

Ingest durability (the upstream-backup story): every trace entry carries
a per-source sequence number and stays in the coordinator's ledger until
the owning worker's heartbeat reports a processed watermark at or past it
— in worker-ingest mode the ledger starts out holding the *whole* trace
and only ever shrinks (it is the fail-over reserve, not a send queue).
When a worker dies, the dead node's operators are reassigned round-robin
to the survivors and a ``REWIRE`` frame announces the new placement to
everyone (senders re-incarnate their channels with a reset + replay).
The un-acked ledger suffix of every moved source then reaches its new
owner through ``INGEST`` frames: coordinator mode replays it directly,
worker mode splices it into the feed queue (removing it from the ledger
first — the feed re-appends as it ships) so pacing and chunking apply to
the replay too.  Messages that had been *admitted* to the dead node's
mailboxes but not processed are re-sent by their upstream's go-back-N
buffer; in-flight window state of moved operators is rebuilt from
scratch — the same at-least-once contract as the sim backend's recovery
layer, realized across real process boundaries.

Termination is a distributed quiescence check: the trace is fully sent,
every ledger is empty (all ingest processed), and every live worker
reported itself idle (empty run queue, no unacked channels, no pending
output) in two consecutive heartbeats.  A hard wall-clock deadline
(``mp_wall_timeout``) bounds the run if quiescence is never reached.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing.connection import wait as conn_wait

from repro.dataflow.operators import OpAddress
from repro.metrics.collectors import MetricsHub
from repro.runtime.mp.frames import (
    CAL_DONE,
    CALIBRATE,
    CLOCK,
    CLOCK_ACK,
    HB,
    INGEST,
    READY,
    REPORT,
    RESCALE,
    REWIRE,
    START,
    STOP,
    TELEMETRY,
    TRACE,
    recv_frame,
    send_frame,
)
from repro.runtime.mp.ingest import sequence_trace, shard_by_owner
from repro.runtime.mp.worker import worker_main
from repro.runtime.placement import Placement
from repro.runtime.topology import client_key

#: max ingest entries per INGEST frame (bounds frame size and fairness)
_INGEST_CHUNK = 256
#: paced replay sends entries up to this far ahead of the wall clock
_LOOKAHEAD = 0.05
#: CLOCK/CLOCK_ACK rounds per worker (the min-RTT round wins)
_CLOCK_ROUNDS = 5


def merge_job_metrics(into, other) -> None:
    """Fold one worker's per-job record into the aggregate."""
    into.output_times.extend(other.output_times)
    into.latencies.extend(other.latencies)
    into.output_tuples.extend(other.output_tuples)
    into.output_values.extend(other.output_values)
    into.source_events.extend(other.source_events)
    into.start_violations += other.start_violations
    into.backpressure_events += other.backpressure_events
    into.max_source_mailbox = max(into.max_source_mailbox, other.max_source_mailbox)
    into.messages_processed += other.messages_processed
    into.messages_shed += other.messages_shed
    into.tuples_shed += other.tuples_shed
    into.operator_exceptions += other.operator_exceptions
    into.poison_dropped += other.poison_dropped
    into.tuples_ingested += other.tuples_ingested
    into.tuples_processed += other.tuples_processed
    for stage, stat in other.queueing.items():
        into.queueing_stat(stage).merge(stat)
    for stage, stat in other.execution.items():
        into.execution_stat(stage).merge(stat)


def merge_hub(into: MetricsHub, other: MetricsHub) -> None:
    """Fold one worker's hub into the aggregate (jobs pre-registered)."""
    for name in other.job_names:
        merge_job_metrics(into.job(name), other.job(name))
    into._timeline_times.extend(other._timeline_times)
    into._timeline_jobs.extend(other._timeline_jobs)
    into._timeline_stages.extend(other._timeline_stages)
    into._timeline_indices.extend(other._timeline_indices)
    into._timeline_progress.extend(other._timeline_progress)
    into.completion_log.extend(other.completion_log)
    into.worker_busy.update(other.worker_busy)
    into.total_messages += other.total_messages
    into.total_acks += other.total_acks
    into.messages_lost_network += other.messages_lost_network
    into.messages_lost_crash += other.messages_lost_crash
    into.messages_dropped_down += other.messages_dropped_down
    into.retransmissions += other.retransmissions
    into.retransmit_backoff_time += other.retransmit_backoff_time
    into.duplicates_dropped += other.duplicates_dropped
    into.acks_lost += other.acks_lost


def _sort_outputs(job_metrics) -> None:
    """Worker reports interleave; restore global time order per job."""
    if not job_metrics.output_times:
        job_metrics.source_events.sort()
        return
    order = sorted(range(len(job_metrics.output_times)),
                   key=job_metrics.output_times.__getitem__)
    job_metrics.output_times = [job_metrics.output_times[i] for i in order]
    job_metrics.latencies = [job_metrics.latencies[i] for i in order]
    job_metrics.output_tuples = [job_metrics.output_tuples[i] for i in order]
    job_metrics.output_values = [job_metrics.output_values[i] for i in order]
    job_metrics.source_events.sort()


class MpCoordinator:
    """Parent-process orchestration of one mp-backend run."""

    def __init__(self, config, jobs: list, policy, trace: list,
                 kills: list | None = None, rescales: list | None = None,
                 until: float = 0.0):
        self._config = config
        self._jobs = jobs
        self._policy = policy
        self._trace = trace
        self._kills = sorted(kills or [])
        self._rescales = sorted(rescales or [])
        self._until = until
        self._n = config.nodes
        #: live placement view (address -> node), updated on fail-over
        self._op_node = self._initial_placement()
        self._worker_ingest = config.mp_ingest_mode == "worker"
        #: sequenced trace: (trace_time, entry) pairs + final seq per source
        self._timed, self._last_seq = sequence_trace(trace)
        self.info: dict = {}
        # observability plane (populated only when the knobs are on)
        self._record_trace = config.record_trace
        self._telemetry_on = config.mp_telemetry_enabled
        self._merger = None
        #: merged TraceRecorder after the run (record_trace only)
        self.tracer = None
        #: folded TelemetryLog after the run (telemetry bus only)
        self.telemetry = None
        #: ClockSync from the startup CLOCK exchange (obs plane only)
        self.clock = None

    def _initial_placement(self) -> dict:
        """Replicate the builder's placement (pure function of config)."""
        addresses = []
        for job in self._jobs:
            for stage_name in job.graph.stage_names:
                stage = job.graph.stage(stage_name)
                for index in range(stage.parallelism):
                    addresses.append(OpAddress(job.name, stage_name, index))
        placement = Placement(self._config.placement, self._config.nodes)
        return dict(placement.assign(addresses))

    def _source_owner(self, src_key: tuple) -> int:
        _, job, stage, index = src_key
        return self._op_node[OpAddress(job, stage, index)]

    # ------------------------------------------------------------------

    def run(self) -> MetricsHub:
        config = self._config
        ctx = multiprocessing.get_context("fork")
        coord_ends, child_ends = [], []
        for _ in range(self._n):
            parent, child = ctx.Pipe(duplex=True)
            coord_ends.append(parent)
            child_ends.append(child)
        peer_ends: dict[int, dict] = {i: {} for i in range(self._n)}
        for i in range(self._n):
            for j in range(i + 1, self._n):
                end_i, end_j = ctx.Pipe(duplex=True)
                peer_ends[i][j] = end_i
                peer_ends[j][i] = end_j
        # worker-ingest mode: each worker inherits its trace shard through
        # fork (no pickling, copy-on-write pages) and replays it locally
        shards = (
            shard_by_owner(self._timed, self._source_owner, self._n)
            if self._worker_ingest else {}
        )
        # every pipe end worker i inherits but does not own — it must
        # close them on startup so a dead peer's ends actually reach
        # zero holders and writes to it raise instead of blocking (see
        # worker_main)
        unused = {
            i: [conn for conn in coord_ends]
            + [child_ends[j] for j in range(self._n) if j != i]
            + [
                conn
                for j in range(self._n)
                if j != i
                for conn in peer_ends[j].values()
            ]
            for i in range(self._n)
        }
        procs = [
            ctx.Process(
                target=worker_main,
                args=(i, config, self._jobs, self._policy,
                      child_ends[i], peer_ends[i], shards.get(i),
                      unused[i]),
                daemon=True,
            )
            for i in range(self._n)
        ]
        for proc in procs:
            proc.start()
        # the parent needs only its coordinator ends; close the rest so
        # worker-side buffers are owned by the workers alone
        for conn in child_ends:
            conn.close()
        for ends in peer_ends.values():
            for conn in ends.values():
                conn.close()

        try:
            return self._orchestrate(coord_ends, procs)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=5.0)
            for conn in coord_ends:
                conn.close()

    # ------------------------------------------------------------------

    def _orchestrate(self, conns: list, procs: list) -> MetricsHub:
        config = self._config
        ready = set()
        deadline = time.monotonic() + 60.0
        while len(ready) < self._n:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"workers never became ready: {sorted(ready)}"
                )
            for event in conn_wait(
                [conns[i] for i in range(self._n) if i not in ready],
                timeout=1.0,
            ):
                kind, payload = recv_frame(event)
                assert kind == READY
                ready.add(payload)

        # spin-mode calibration barrier: all workers measure their spin
        # rate *concurrently* (see worker.calibrate_spin_rate), then START
        spin_rates: dict[int, float] = {}
        if config.mp_cost_mode == "spin":
            for conn in conns:
                send_frame(conn, CALIBRATE)
            deadline = time.monotonic() + 60.0
            while len(spin_rates) < self._n:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"calibration never finished: {sorted(spin_rates)}"
                    )
                for event in conn_wait(
                    [conns[i] for i in range(self._n) if i not in spin_rates],
                    timeout=1.0,
                ):
                    kind, payload = recv_frame(event)
                    assert kind == CAL_DONE
                    spin_rates[payload[0]] = payload[1]

        # clock-sync exchange (observability plane only): NTP-style
        # offset estimation per worker, so worker-local monotonic
        # timestamps can be reconciled onto the coordinator clock.  Runs
        # between the calibration barrier and the epoch broadcast so the
        # untraced frame sequence is byte-identical when the plane is off.
        if self._record_trace or self._telemetry_on:
            self._sync_clocks(conns)

        epoch = time.monotonic()
        for conn in conns:
            send_frame(conn, START, epoch)

        # ingest ledger: retain every sequenced entry until the owner's
        # heartbeat watermark passes it.  Coordinator mode additionally
        # queues everything for INGEST-frame replay; worker mode feeds
        # nothing (workers own their shards) — the feed queue only fills
        # on fail-over, with the moved sources' ledger remainders.
        pending: deque = deque()
        last_seq = self._last_seq
        ledger: dict[tuple, deque] = {}
        acked: dict[tuple, int] = {}
        for src_key in last_seq:
            ledger[src_key] = deque()
            acked[src_key] = -1
        if self._worker_ingest:
            for _trace_time, entry in self._timed:
                ledger[entry[0]].append(entry)
        else:
            pending.extend(self._timed)

        alive = set(range(self._n))
        now = 0.0
        last_hb = {i: 0.0 for i in alive}
        idle_streak = {i: 0 for i in alive}
        kills = deque(self._kills)
        rescales = deque(self._rescales)
        crash_time: dict[int, float] = {}
        fault_log: list[tuple[int, float, float]] = []
        crashes = 0
        realtime = config.mp_realtime
        wall_limit = config.mp_wall_timeout or max(30.0, self._until * 3.0 + 10.0)
        forced_stop = False
        hb_interval = config.heartbeat_interval

        def elapsed() -> float:
            return time.monotonic() - epoch

        while True:
            now = elapsed()
            while kills and now >= kills[0][0]:
                _, node_id = kills.popleft()
                if node_id in alive and procs[node_id].is_alive():
                    procs[node_id].kill()
                    crash_time[node_id] = now
                    crashes += 1
            while rescales and now >= rescales[0][0]:
                _, job_name, stage_name, parallelism = rescales.popleft()
                for i in alive:
                    try:
                        send_frame(conns[i], RESCALE,
                                   (job_name, stage_name, parallelism))
                    except (BrokenPipeError, OSError):
                        pass
            self._feed(pending, ledger, conns, alive, now, realtime)
            self._drain_control(conns, alive, last_hb, idle_streak,
                                ledger, acked, elapsed)
            now = elapsed()
            dead = [
                i for i in alive
                if now - last_hb[i] > config.failure_timeout
                and not procs[i].is_alive()
            ]
            for node_id in dead:
                if len(alive) == 1:
                    raise RuntimeError("every worker died; no survivors")
                alive.discard(node_id)
                fault_log.append(
                    (node_id, crash_time.get(node_id, last_hb[node_id]), now)
                )
                self._fail_over(node_id, alive, conns, pending, ledger, acked)
                for i in alive:
                    idle_streak[i] = 0  # re-quiesce after the rewire
            if (
                not pending
                and all(acked[k] >= last_seq[k] for k in last_seq)
                and all(idle_streak[i] >= 2 for i in alive)
            ):
                break
            if now > wall_limit:
                forced_stop = True
                break
            timeout = hb_interval
            if pending and realtime:
                timeout = min(timeout, max(0.0, pending[0][0] - elapsed()))
            if timeout > 0:
                conn_wait(
                    [conns[i] for i in alive],
                    timeout=min(timeout, config.mp_poll_interval),
                )

        for i in alive:
            try:
                send_frame(conns[i], STOP)
            except (BrokenPipeError, OSError):
                pass
        reports = self._collect_reports(conns, alive)
        metrics = self._merge(reports)
        metrics.crashes = crashes
        metrics.failure_detections.extend(fault_log)
        if self._merger is not None:
            self.tracer = self._merger.build()
            if self.telemetry is not None:
                # telemetry rides along as scheduler samples so Perfetto
                # counter tracks appear without exporter changes
                for sample in self.telemetry.to_sched_samples():
                    self.tracer.add_sample(sample)
        self.info = {
            "wall_time": elapsed(),
            "workers": self._n,
            "survivors": sorted(alive),
            "forced_stop": forced_stop,
            "cost_mode": config.mp_cost_mode,
            "ingest_mode": config.mp_ingest_mode,
            "spin_rates": spin_rates,
            "reports": {node: stats for node, (_, stats) in reports.items()},
            "fifo_violations": sum(
                stats["fifo_violations"] for _, stats in reports.values()
            ),
        }
        if self.clock is not None:
            self.info["clock"] = self.clock.as_dict()
        if self._merger is not None:
            self.info["trace_parts"] = self._merger.part_count
        if self.telemetry is not None:
            self.info["telemetry_samples"] = len(self.telemetry)
        return metrics

    # ------------------------------------------------------------------

    def _sync_clocks(self, conns: list) -> None:
        """NTP-style clock exchange with every worker (pre-START).

        Each round records ``t0``, sends ``CLOCK``, and on ``CLOCK_ACK``
        records ``t1``; the worker's reading is assumed to correspond to
        the midpoint ``(t0 + t1) / 2``, so ``offset = reading - midpoint``
        with uncertainty ``rtt / 2``.  The minimum-RTT round wins — its
        midpoint assumption has the least room to be wrong.  Workers sit
        in their pre-START frame loop, so the reply is immediate and RTTs
        are tens of microseconds on local pipes."""
        from repro.obs.merge import ClockSync, SpanMerger
        from repro.obs.telemetry import TelemetryLog

        offsets: dict[int, float] = {}
        uncertainties: dict[int, float] = {}
        pids: dict[int, int] = {}
        for i, conn in enumerate(conns):
            best_rtt = None
            best_offset = 0.0
            pid = -1
            for _ in range(_CLOCK_ROUNDS):
                t0 = time.monotonic()
                send_frame(conn, CLOCK)
                kind, payload = recv_frame(conn)
                t1 = time.monotonic()
                assert kind == CLOCK_ACK
                node_id, pid, reading = payload
                assert node_id == i
                rtt = t1 - t0
                if best_rtt is None or rtt < best_rtt:
                    best_rtt = rtt
                    best_offset = reading - (t0 + t1) / 2.0
            offsets[i] = best_offset
            uncertainties[i] = best_rtt / 2.0
            pids[i] = pid
        self.clock = ClockSync(offsets, uncertainties, pids)
        if self._record_trace:
            self._merger = SpanMerger(self.clock)
        if self._telemetry_on:
            self.telemetry = TelemetryLog()

    def _fold_telemetry(self, payload) -> None:
        """Unpack one TELEMETRY frame into the time-series log, moving
        sample times onto the coordinator clock."""
        if self.telemetry is None:
            return
        from repro.obs.telemetry import unpack_samples

        node_id, blob = payload
        samples = unpack_samples(blob)
        offset = self.clock.offsets.get(node_id, 0.0) if self.clock else 0.0
        if offset:
            for sample in samples:
                sample.time -= offset
        self.telemetry.extend(samples)

    def _absorb_obs(self, kind: str, payload) -> bool:
        """Fold an observability frame; True when it was one."""
        if kind == TRACE:
            if self._merger is not None:
                self._merger.add_parts(payload[0], payload[1])
            return True
        if kind == TELEMETRY:
            self._fold_telemetry(payload)
            return True
        return False

    def _feed(self, pending: deque, ledger: dict, conns: list, alive: set,
              now: float, realtime: bool) -> None:
        """Ship due trace entries, chunked per owner node."""
        horizon = now + _LOOKAHEAD
        batches: dict[int, list] = {}
        budget = _INGEST_CHUNK * max(1, len(alive))
        while pending and budget > 0:
            trace_time, entry = pending[0]
            if realtime and trace_time > horizon:
                break
            pending.popleft()
            budget -= 1
            src_key = entry[0]
            ledger[src_key].append(entry)
            batches.setdefault(self._source_owner(src_key), []).append(entry)
        for node_id, entries in batches.items():
            conn = conns[node_id]
            for start in range(0, len(entries), _INGEST_CHUNK):
                try:
                    send_frame(conn, INGEST, entries[start:start + _INGEST_CHUNK])
                except (BrokenPipeError, OSError):
                    break  # owner died; the ledger replays after fail-over

    def _drain_control(self, conns: list, alive: set, last_hb: dict,
                       idle_streak: dict, ledger: dict, acked: dict,
                       elapsed) -> None:
        for i in list(alive):
            conn = conns[i]
            while True:
                try:
                    if not conn.poll():
                        break
                    kind, payload = recv_frame(conn)
                except (EOFError, OSError):
                    break
                if self._absorb_obs(kind, payload):
                    continue
                if kind != HB:
                    continue  # stray frame (late REPORT after forced stop)
                node_id, idle, ingest_acks, _processed = payload
                last_hb[node_id] = elapsed()
                idle_streak[node_id] = idle_streak[node_id] + 1 if idle else 0
                for src_key, watermark in ingest_acks.items():
                    if watermark > acked.get(src_key, -1):
                        acked[src_key] = watermark
                        entries = ledger[src_key]
                        while entries and entries[0][1] <= watermark:
                            entries.popleft()

    def _fail_over(self, dead: int, alive: set, conns: list, pending: deque,
                   ledger: dict, acked: dict) -> None:
        """Reassign the dead node's operators and replay unacked ingest."""
        survivors = sorted(alive)
        mapping = {}
        slot = 0
        for address, node_id in self._op_node.items():
            if node_id == dead:
                mapping[address] = survivors[slot % len(survivors)]
                slot += 1
        self._op_node.update(mapping)
        for i in alive:
            try:
                send_frame(conns[i], REWIRE, (mapping, dead))
            except (BrokenPipeError, OSError):
                pass
        spliced = []
        for src_key in ledger:
            _, job, stage, index = src_key
            if OpAddress(job, stage, index) not in mapping:
                continue
            replays = [e for e in ledger[src_key] if e[1] > acked[src_key]]
            if self._worker_ingest:
                # the dead owner held these in its fork-inherited shard;
                # splice them into the feed queue (clearing the ledger
                # first — _feed re-appends as it ships) so the survivor
                # receives them as paced/chunked INGEST frames
                ledger[src_key].clear()
                spliced.extend((entry[2], entry) for entry in replays)
                continue
            conn = conns[self._source_owner(src_key)]
            for start in range(0, len(replays), _INGEST_CHUNK):
                try:
                    send_frame(conn, INGEST, replays[start:start + _INGEST_CHUNK])
                except (BrokenPipeError, OSError):
                    break
        if spliced:
            merged = sorted(
                list(pending) + spliced,
                key=lambda item: (item[0], item[1][0], item[1][1]),
            )
            pending.clear()
            pending.extend(merged)

    def _collect_reports(self, conns: list, alive: set) -> dict:
        reports: dict[int, tuple] = {}
        deadline = time.monotonic() + 30.0
        waiting = set(alive)
        while waiting and time.monotonic() < deadline:
            for event in conn_wait([conns[i] for i in waiting], timeout=1.0):
                try:
                    kind, payload = recv_frame(event)
                except (EOFError, OSError):
                    for i in list(waiting):
                        if conns[i] is event:
                            waiting.discard(i)
                    continue
                if self._absorb_obs(kind, payload):
                    continue
                if kind == REPORT:
                    node_id, hub, stats = payload
                    reports[node_id] = (hub, stats)
                    waiting.discard(node_id)
        return reports

    def _merge(self, reports: dict) -> MetricsHub:
        metrics = MetricsHub()
        for job in self._jobs:
            metrics.register_job(job.name, job.group, job.latency_constraint)
        for _, (hub, _stats) in sorted(reports.items()):
            merge_hub(metrics, hub)
        for name in metrics.job_names:
            _sort_outputs(metrics.job(name))
        metrics.completion_log.sort(key=lambda entry: entry[0])
        return metrics

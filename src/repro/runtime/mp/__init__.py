"""Process-backed execution backend (``backend="mp"``).

Each node of the configured cluster runs as a real worker process; the
coordinator replays a deterministically captured ingest trace into the
workers, which exchange framed, batched messages over multiprocessing
pipes through a :class:`~repro.runtime.mp.transport.ProcessTransport`
implementing the same ingest/deliver/route/reply surface as the simulated
:class:`~repro.runtime.transport.Transport`.  The wall-clock variant of
:class:`~repro.runtime.recovery.ReliableDelivery` (per-channel sequence
numbers, cumulative acks, go-back-N retransmission) is the reliability
layer over those channels.  See ``docs/architecture.md`` ("Process
backend") for the frame format, the ack flow, the FIFO-order argument and
the determinism caveats relative to the sim backend.
"""

from repro.runtime.mp.engine import MpStreamEngine

__all__ = ["MpStreamEngine"]

"""Wire frames of the process backend.

Everything crossing a pipe is one *frame* written with
``Connection.send_bytes`` (one length-prefixed syscall per frame).  Two
encodings share the pipe and are discriminated by the first byte:

* **Control frames** — a pickled ``(kind, payload)`` tuple (pickle frames
  start with ``b"\\x80"``).  Rare, shapes vary, pickle is fine.
* **Binary DATA frames** (magic ``0xC3``) — the data-plane fast path.  A
  single frame carries every entry a worker produced for one destination
  during a dispatch quantum — messages, coalesced cumulative acks, reply
  contexts and channel resets — struct-packed: a fixed-layout record per
  entry kind, numeric fields packed little-endian, event arrays appended
  as raw ``float64``/``int64`` bytes, and operator/client addresses (plus
  stage-name strings) *interned per connection direction* so each address
  crosses the pipe once (a pickled ``DEF`` record) and is a 4-byte id
  ever after.  Pipes are FIFO, so a definition always precedes its uses;
  entries that do not match the fast shape (a message carrying a reply
  context, an exotic priority-context subclass) degrade to a per-entry
  pickle record inside the same frame — the fast path is an encoding
  choice, never a semantic constraint.

Control frame kinds
-------------------

=========  =========  ===================================================
kind       direction  payload
=========  =========  ===================================================
READY      w -> c     ``node_id`` — worker finished booting its topology
CALIBRATE  c -> w     ``None`` — run the spin-cost calibration *now*
                      (all workers calibrate concurrently; spin mode only)
CAL_DONE   w -> c     ``(node_id, spin_rate)`` — calibration finished
START      c -> w     ``epoch`` — shared wall-clock base (CLOCK_MONOTONIC)
INGEST     c -> w     list of ``(src_key, seq, trace_time, times, values,
                      keys, sorted)`` ingest entries (coordinator-replay
                      mode and fail-over shard replay)
HB         w -> c     ``(node_id, idle, ingest_acks, processed_total)``
CLOCK      c -> w     ``None`` — clock-sync probe; the worker answers
                      immediately (sent between the calibration barrier
                      and START, only when the obs plane is on)
CLOCK_ACK  w -> c     ``(node_id, pid, monotonic_reading)`` — the NTP-style
                      reply; several rounds yield per-worker clock offsets
                      (min-RTT round wins) plus the real process ids the
                      Perfetto exporter maps processes to
TRACE      w -> c     ``(node_id, [span_part, ...])`` — batched span parts
                      (:data:`repro.obs.merge.PART_FIELDS` tuples) flushed
                      with heartbeats; cumulative, latest part wins per
                      ``(msg_id, origin node)``
TELEMETRY  w -> c     ``(node_id, packed_bytes)`` — struct-packed
                      :class:`repro.obs.telemetry.TelemetrySample` records
                      (the periodic worker telemetry bus)
REWIRE     c -> w     ``({address: new_node_id}, dead_node_id)``
RESCALE    c -> w     ``(job_name, stage_name, parallelism)`` — rescale a
                      key-partitioned stage (applied at the worker's next
                      quiescent point for that stage; single-node runs)
STOP       c -> w     ``None`` — drain nothing further, report and exit
REPORT     w -> c     ``(node_id, MetricsHub, worker_stats)``
=========  =========  ===================================================

Binary DATA records (after the magic byte; all little-endian)
-------------------------------------------------------------

=======  ==========================================================
tag      layout
=======  ==========================================================
1 DEF    u32 id, u32 len, pickle(object) — interning definition
2 MSG    u32 sender_id, u32 target_id, u8 flags (bit0 = has PC),
         i64 msg_id, i64 seq, i32 channel_index, f64 p, f64 t,
         f64 deps_arrival, f64 batch.arrival_time, u32 n,
         i32 source_id, u8 times_sorted, then n×f64 logical times,
         n×f64 values, n×i64 keys, then (flags bit0) the PC record:
         i64 msg_id, f64 ×6 (pri_local, pri_global, p_mf, t_mf,
         latency_constraint, deadline), i64 token_interval
3 ACK    u32 sender_id, u32 target_id, i64 admitted, i64 processed
4 REPLY  u32 sender_id, u32 stage_id, f64 c_m, f64 c_path,
         f64 queueing_delay, i64 mailbox_size
5 RESET  u32 sender_id, u32 target_id, i64 base_seq
6 RAW    u32 len, pickle(entry) — fallback for non-fast shapes
=======  ==========================================================

Sequence numbers, msg ids and enqueue times travel exactly as the
pickled path shipped them (``enqueue_time`` is receiver-local and is
rebuilt as NaN); decoded messages are the *same* messages — the global
id counter is never consulted on the receiving side.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

import numpy as np

from repro.core.context import PriorityContext, ReplyContext
from repro.dataflow.events import EventBatch
from repro.dataflow.messages import Message, MessageKind

READY = "ready"
CALIBRATE = "cal"
CAL_DONE = "cal_done"
START = "start"
INGEST = "ingest"
DATA = "data"
HB = "hb"
CLOCK = "clock"
CLOCK_ACK = "clock_ack"
TRACE = "trace"
TELEMETRY = "telemetry"
REWIRE = "rewire"
RESCALE = "rescale"
STOP = "stop"
REPORT = "report"

#: first byte of a binary DATA frame (pickle frames start with 0x80)
DATA_MAGIC = b"\xc3"

_PROTO = pickle.HIGHEST_PROTOCOL
_NAN = float("nan")

_TAG_DEF = 1
_TAG_MSG = 2
_TAG_ACK = 3
_TAG_REPLY = 4
_TAG_RESET = 5
_TAG_RAW = 6

_DEF = struct.Struct("<BII")
_MSG = struct.Struct("<BIIBqqiddddIiB")
_ACK = struct.Struct("<BIIqq")
_REPLY = struct.Struct("<BIIdddq")
_RESET = struct.Struct("<BIIq")
_RAW = struct.Struct("<BI")
_PC = struct.Struct("<q6dq")


def send_frame(conn, kind: str, payload: Any = None) -> None:
    """Write one control frame (single syscall via ``send_bytes``)."""
    conn.send_bytes(pickle.dumps((kind, payload), protocol=_PROTO))


def recv_frame(conn) -> tuple:
    """Read one control frame; returns ``(kind, payload)``."""
    return pickle.loads(conn.recv_bytes())


class DataCodec:
    """Binary encoder/decoder for one pipe (one codec per peer connection).

    The encoder half interns the addresses *this* side sends; the decoder
    half resolves the ids the *other* side assigned.  The two directions
    are independent id spaces, so a single codec object per connection
    serves both.  State only ever grows with the (small, bounded) set of
    operator addresses and stage names — it survives fail-over rewires
    unchanged because addresses are stable identities."""

    __slots__ = ("_ids", "_objs")

    def __init__(self):
        self._ids: dict = {}    # encoder: object -> id
        self._objs: list = []   # decoder: id -> object

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def _intern(self, obj, parts: list) -> int:
        ids = self._ids
        id_ = ids.get(obj)
        if id_ is None:
            id_ = len(ids)
            ids[obj] = id_
            blob = pickle.dumps(obj, protocol=_PROTO)
            parts.append(_DEF.pack(_TAG_DEF, id_, len(blob)))
            parts.append(blob)
        return id_

    def encode_data(self, entries: list) -> bytes:
        """One binary DATA frame carrying every entry, fast paths first."""
        parts: list = [DATA_MAGIC]
        intern = self._intern
        for entry in entries:
            tag = entry[0]
            if tag == "msg":
                msg = entry[1]
                batch = msg.batch
                pc = msg.pc
                if (
                    msg.kind is not MessageKind.DATA
                    or msg.rc is not None
                    or batch is None
                    or (pc is not None and type(pc) is not PriorityContext)
                ):
                    self._raw(entry, parts)
                    continue
                sender_id = intern(msg.sender, parts)
                target_id = intern(msg.target, parts)
                times = np.ascontiguousarray(batch.logical_times)
                values = np.ascontiguousarray(batch.values)
                keys = np.ascontiguousarray(batch.keys)
                parts.append(_MSG.pack(
                    _TAG_MSG, sender_id, target_id,
                    1 if pc is not None else 0,
                    msg.msg_id, msg.seq, msg.channel_index,
                    msg.p, msg.t, msg.deps_arrival,
                    batch.arrival_time, len(times), batch.source_id,
                    1 if batch.times_sorted else 0,
                ))
                parts.append(times.tobytes())
                parts.append(values.tobytes())
                parts.append(keys.tobytes())
                if pc is not None:
                    parts.append(_PC.pack(
                        pc.msg_id, pc.pri_local, pc.pri_global, pc.p_mf,
                        pc.t_mf, pc.latency_constraint, pc.deadline,
                        pc.token_interval,
                    ))
            elif tag == "ack":
                _, key, admitted, processed = entry
                parts.append(_ACK.pack(
                    _TAG_ACK, intern(key[0], parts), intern(key[1], parts),
                    admitted, processed,
                ))
            elif tag == "reply":
                _, sender, stage, rc = entry
                if type(rc) is not ReplyContext:
                    self._raw(entry, parts)
                    continue
                parts.append(_REPLY.pack(
                    _TAG_REPLY, intern(sender, parts), intern(stage, parts),
                    rc.c_m, rc.c_path, rc.queueing_delay, rc.mailbox_size,
                ))
            elif tag == "reset":
                _, key, base_seq = entry
                parts.append(_RESET.pack(
                    _TAG_RESET, intern(key[0], parts), intern(key[1], parts),
                    base_seq,
                ))
            else:
                self._raw(entry, parts)
        return b"".join(parts)

    @staticmethod
    def _raw(entry, parts: list) -> None:
        blob = pickle.dumps(entry, protocol=_PROTO)
        parts.append(_RAW.pack(_TAG_RAW, len(blob)))
        parts.append(blob)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode_data(self, buf: bytes) -> list:
        """Decode one binary DATA frame back into transport entries."""
        if buf[:1] != DATA_MAGIC:
            raise ValueError("not a binary DATA frame")
        objs = self._objs
        entries: list = []
        offset = 1
        end = len(buf)
        while offset < end:
            tag = buf[offset]
            if tag == _TAG_MSG:
                (
                    _, sender_id, target_id, flags, msg_id, seq,
                    channel_index, p, t, deps_arrival, arrival_time, n,
                    source_id, times_sorted,
                ) = _MSG.unpack_from(buf, offset)
                offset += _MSG.size
                times = np.frombuffer(buf, np.float64, n, offset).copy()
                offset += n * 8
                values = np.frombuffer(buf, np.float64, n, offset).copy()
                offset += n * 8
                keys = np.frombuffer(buf, np.int64, n, offset).copy()
                offset += n * 8
                pc = None
                if flags & 1:
                    (
                        pc_msg_id, pri_local, pri_global, p_mf, t_mf,
                        latency_constraint, deadline, token_interval,
                    ) = _PC.unpack_from(buf, offset)
                    offset += _PC.size
                    pc = PriorityContext(
                        msg_id=pc_msg_id, pri_local=pri_local,
                        pri_global=pri_global, p_mf=p_mf, t_mf=t_mf,
                        latency_constraint=latency_constraint,
                        deadline=deadline, token_interval=token_interval,
                    )
                msg = Message.__new__(Message)
                msg.target = objs[target_id]
                msg.batch = EventBatch._raw(
                    times, values, keys, arrival_time, source_id,
                    bool(times_sorted),
                )
                msg.p = p
                msg.t = t
                msg.deps_arrival = deps_arrival
                msg.sender = objs[sender_id]
                msg.kind = MessageKind.DATA
                msg.pc = pc
                msg.rc = None
                msg.channel_index = channel_index
                msg.msg_id = msg_id
                msg.enqueue_time = _NAN
                msg.seq = seq
                msg.retries = 0
                entries.append(("msg", msg))
            elif tag == _TAG_ACK:
                _, sender_id, target_id, admitted, processed = _ACK.unpack_from(
                    buf, offset
                )
                offset += _ACK.size
                entries.append(
                    ("ack", (objs[sender_id], objs[target_id]), admitted, processed)
                )
            elif tag == _TAG_REPLY:
                (
                    _, sender_id, stage_id, c_m, c_path, queueing_delay,
                    mailbox_size,
                ) = _REPLY.unpack_from(buf, offset)
                offset += _REPLY.size
                rc = ReplyContext(
                    c_m=c_m, c_path=c_path, queueing_delay=queueing_delay,
                    mailbox_size=mailbox_size,
                )
                entries.append(("reply", objs[sender_id], objs[stage_id], rc))
            elif tag == _TAG_RESET:
                _, sender_id, target_id, base_seq = _RESET.unpack_from(buf, offset)
                offset += _RESET.size
                entries.append(
                    ("reset", (objs[sender_id], objs[target_id]), base_seq)
                )
            elif tag == _TAG_DEF:
                _, id_, length = _DEF.unpack_from(buf, offset)
                offset += _DEF.size
                obj = pickle.loads(buf[offset:offset + length])
                offset += length
                if id_ != len(objs):  # pragma: no cover - protocol guard
                    raise ValueError(
                        f"interning id {id_} out of order (have {len(objs)})"
                    )
                objs.append(obj)
            elif tag == _TAG_RAW:
                _, length = _RAW.unpack_from(buf, offset)
                offset += _RAW.size
                entries.append(pickle.loads(buf[offset:offset + length]))
                offset += length
            else:  # pragma: no cover - protocol guard
                raise ValueError(f"unknown DATA record tag {tag}")
        return entries

"""Wire frames of the process backend.

Everything crossing a pipe is one *frame*: a pickled ``(kind, payload)``
tuple written with ``Connection.send_bytes`` (one length-prefixed syscall
per frame).  Data-plane frames are *batched*: a single ``DATA`` frame
carries every entry a worker produced for one destination during a
dispatch quantum — messages, coalesced cumulative acks, reply contexts
and channel resets — so the hot send path pays one syscall per quantum,
not one per message.

Frame kinds
-----------

========  =========  ====================================================
kind      direction  payload
========  =========  ====================================================
READY     w -> c     ``node_id`` — worker finished booting its topology
START     c -> w     ``epoch`` — shared wall-clock base (CLOCK_MONOTONIC)
INGEST    c -> w     list of ``(src_key, seq, trace_time, times, values,
                     keys, sorted)`` ingest entries
DATA      w <-> w    list of entries: ``("msg", Message)``,
                     ``("ack", channel_key, admitted, processed)``,
                     ``("reply", sender_key, replier_stage, rc)``,
                     ``("reset", channel_key, base_seq)``
HB        w -> c     ``(node_id, idle, ingest_acks, processed_total)``
REWIRE    c -> w     ``({address: new_node_id}, dead_node_id)``
STOP      c -> w     ``None`` — drain nothing further, report and exit
REPORT    w -> c     ``(node_id, MetricsHub, worker_stats)``
========  =========  ====================================================

Messages, contexts and batches are pickle-clean by construction (explicit
``__getstate__``/``__setstate__`` on every ``__slots__`` hot-path class),
so frames carry the exact runtime objects — no translation layer.
"""

from __future__ import annotations

import pickle
from typing import Any

READY = "ready"
START = "start"
INGEST = "ingest"
DATA = "data"
HB = "hb"
REWIRE = "rewire"
STOP = "stop"
REPORT = "report"


def send_frame(conn, kind: str, payload: Any = None) -> None:
    """Write one frame (single syscall via ``send_bytes``)."""
    conn.send_bytes(pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL))


def recv_frame(conn) -> tuple:
    """Read one frame; returns ``(kind, payload)``."""
    return pickle.loads(conn.recv_bytes())

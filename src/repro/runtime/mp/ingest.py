"""Ingest replay of the mp backend: sequencing, sharding, in-worker driving.

The capture phase (:class:`~repro.runtime.mp.engine.MpStreamEngine`)
records a flat trace of ``(trace_time, src_key, times, values, keys,
sorted)`` tuples.  Before replay, :func:`sequence_trace` stamps every
entry with a per-source sequence number — the durable identity the
upstream-backup story is built on: workers deduplicate replay overlap by
it, heartbeats report contiguous *processed* watermarks over it, and the
coordinator's ledger trims against those watermarks.

Who replays the sequenced trace is ``EngineConfig.mp_ingest_mode``:

* ``"worker"`` (default) — :func:`shard_by_owner` splits the trace by the
  node owning each source (placement is a pure function of the config, so
  the split is computed once in the parent and inherited through fork),
  and a per-worker :class:`IngestDriver` replays its shard against the
  local clock.  The coordinator never touches the data path; it keeps the
  full ledger only so fail-over can re-feed a dead worker's shard
  remainder to the source's new owner.
* ``"coordinator"`` — the parent process streams every entry through
  ``INGEST`` frames (the original behaviour; a single pacing clock).

Either way the entries reaching ``ProcessTransport.on_ingest`` are
identical, so dedupe, watermarking and fail-over replay are mode-blind.
"""

from __future__ import annotations

from typing import Callable


def sequence_trace(trace: list) -> tuple[list, dict]:
    """Assign per-source sequence numbers in trace order.

    Returns ``(timed, last_seq)`` where ``timed`` is a list of
    ``(trace_time, entry)`` pairs — ``entry`` being the wire shape
    ``(src_key, seq, trace_time, times, values, keys, sorted)`` — and
    ``last_seq`` maps each source to its final sequence number (the
    quiescence target: the run is ingest-complete when every source's
    processed watermark reaches it)."""
    timed: list = []
    next_seq: dict[tuple, int] = {}
    last_seq: dict[tuple, int] = {}
    for trace_time, src_key, times, values, keys, sorted_times in trace:
        seq = next_seq.get(src_key, 0)
        next_seq[src_key] = seq + 1
        last_seq[src_key] = seq
        timed.append(
            (trace_time, (src_key, seq, trace_time, times, values, keys, sorted_times))
        )
    return timed, last_seq


def shard_by_owner(
    timed: list, owner_of: Callable[[tuple], int], node_count: int
) -> dict[int, list]:
    """Partition sequenced entries by owning node (order-preserving).

    Every node gets a shard (possibly empty) so fork arguments are
    uniform; within a shard both global time order and per-source
    sequence order are preserved."""
    shards: dict[int, list] = {i: [] for i in range(node_count)}
    for item in timed:
        shards[owner_of(item[1][0])].append(item)
    return shards


class IngestDriver:
    """Replays one worker's trace shard against the local clock.

    Paced mode (``mp_realtime=True``) releases entries whose trace time
    has arrived on the shared wall clock; flooded mode releases them as
    fast as the dispatch loop absorbs chunks.  Chunking bounds how long
    ingestion can starve dispatch in flooded runs — the worker loop
    interleaves one pump with one dispatch quantum."""

    __slots__ = ("_timed", "_pos", "_realtime")

    def __init__(self, timed: list, realtime: bool):
        self._timed = timed
        self._pos = 0
        self._realtime = realtime

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._timed)

    @property
    def remaining(self) -> int:
        """Undelivered entries left in the shard (the telemetry bus's
        ingest-backlog sensor)."""
        return len(self._timed) - self._pos

    def next_due(self) -> float | None:
        """Trace time of the next undelivered entry (None when done)."""
        if self._pos >= len(self._timed):
            return None
        return self._timed[self._pos][0]

    def pump(self, now: float, sink: Callable[[list], None],
             chunk: int = 256) -> bool:
        """Deliver up to ``chunk`` due entries into ``sink``.

        Returns True when anything was delivered."""
        timed = self._timed
        pos = self._pos
        end = min(len(timed), pos + chunk)
        if self._realtime:
            entries = []
            while pos < end and timed[pos][0] <= now:
                entries.append(timed[pos][1])
                pos += 1
        else:
            entries = [item[1] for item in timed[pos:end]]
            pos = end
        if not entries:
            return False
        self._pos = pos
        sink(entries)
        return True

"""Worker process of the mp backend: one node, executed for real.

Each worker rebuilds the *entire* topology locally (placement is a pure
function of the config, so every process derives the same wiring) but
executes only the operators placed on its node.  The dispatch loop is the
wall-clock analogue of :class:`~repro.runtime.node.NodeRuntime`: pump the
local ingest shard (worker-ingest mode), pop an operator from the run
queue in the scheduler's order, run its messages for a quantum, requeue,
and between quanta drain the pipes, retransmit expired channels, flush
the outboxes (one binary ``DATA`` frame per destination — the amortized
batch) and heartbeat the coordinator.  Every idle wait is capped by
``EngineConfig.mp_poll_interval``.

Execution cost realization (``mp_cost_mode``): ``"sleep"`` occupies the
worker in wall-clock time (sleeps overlap across processes, so capacity
scales with worker count even on few cores); ``"spin"`` burns the cost as
CPU work — a *fixed iteration count* of ``cost * spin_rate``, where
``spin_rate`` (iterations/second) is measured once at startup by
:func:`calibrate_spin_rate` while the coordinator holds **all** workers
in the calibration barrier, so the rate reflects deployment-level CPU
contention; ``"none"`` skips realization (pure overhead measurement).

Determinism: every worker derives its RNG substreams from the run seed by
name (``mp/exec-cost/<node>``, ``mp/loss/<node>``) through the same
order-independent registry the sim backend uses, so cost samples and loss
decisions are reproducible per node regardless of message interleaving.
Spin calibration measures the host, not the seed — the *work amount* per
message stays seed-stable, only its wall-clock duration is host-relative.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import replace
from multiprocessing.connection import wait as conn_wait

from repro.core.policies import make_policy
from repro.core.profiler import CostProfiler, GaussianNoiseInjector
from repro.core.shedding import DeadlineShedder
from repro.metrics.collectors import MetricsHub
from repro.runtime.mp.frames import (
    CAL_DONE,
    CALIBRATE,
    CLOCK,
    CLOCK_ACK,
    DATA,
    DATA_MAGIC,
    HB,
    INGEST,
    READY,
    REPORT,
    RESCALE,
    REWIRE,
    START,
    STOP,
    TELEMETRY,
    TRACE,
    DataCodec,
    recv_frame,
    send_frame,
)
from repro.runtime.lifecycle import apply_stage_rescale
from repro.runtime.mp.ingest import IngestDriver
from repro.runtime.mp.reliable import MpReliableDelivery
from repro.runtime.mp.transport import ProcessTransport
from repro.runtime.node import make_run_queue
from repro.runtime.topology import TopologyBuilder
from repro.sim.network import ChannelTable, ConstantDelay
from repro.sim.rng import RngRegistry

#: calibration spins in chunks of this many iterations between clock reads
_CAL_CHUNK = 50_000


def spin(iterations: int) -> int:
    """Burn ``iterations`` of pure-Python CPU work (the spin kernel).

    Deliberately allocation-free and branch-light so its per-iteration
    cost is stable between the calibration loop and the hot path."""
    acc = 0
    while iterations > 0:
        acc += iterations & 7
        iterations -= 1
    return acc


def calibrate_spin_rate(measure: float = 0.6) -> float:
    """Measure this process's spin throughput in iterations/second.

    The rate is whatever the host grants *right now* — the coordinator
    barriers every worker into calibrating concurrently, so on an
    oversubscribed host each worker measures its contended share and the
    fixed per-message iteration counts stay proportional to the sampled
    costs under deployment-level contention; on a host with a core per
    worker, calibration is uncontended and spin is honestly CPU-bound."""
    spin(_CAL_CHUNK)  # warm the loop before timing
    start = time.monotonic()
    iterations = 0
    while True:
        spin(_CAL_CHUNK)
        iterations += _CAL_CHUNK
        elapsed = time.monotonic() - start
        if elapsed >= measure:
            return iterations / elapsed


class _BuilderNode:
    """Placement slot handed to the topology builder (mailbox factory)."""

    __slots__ = ("node_id", "run_queue")

    def __init__(self, node_id: int, run_queue):
        self.node_id = node_id
        self.run_queue = run_queue


class MpWorker:
    """One node of the cluster, running in its own process."""

    def __init__(self, node_id: int, config, jobs: list, policy=None,
                 coord_conn=None, peer_conns=None, shard=None):
        self._node_id = node_id
        self._config = config
        self._coord = coord_conn
        self._peers = dict(peer_conns or {})
        self._epoch = 0.0
        self._stop = False
        self._busy_time = 0.0
        self._messages = 0

        jobs_by_name = {j.name: j for j in jobs}
        self._jobs = jobs_by_name
        rng = RngRegistry(config.seed)
        self._cost_rng = rng.stream(f"mp/exec-cost/{node_id}")
        noise = None
        if config.profile_noise_sigma > 0:
            noise = GaussianNoiseInjector(
                config.profile_noise_sigma,
                rng.stream(f"mp/profile-noise/{node_id}"),
            )
        self._profiler = CostProfiler(alpha=config.profiler_alpha, noise=noise)
        self._policy = policy or make_policy(config.policy, **config.policy_kwargs)

        # each worker process runs its node serially: one dispatch slot
        queue_config = replace(config, workers_per_node=1)
        builder_nodes = [
            _BuilderNode(i, make_run_queue(queue_config, self._now))
            for i in range(config.nodes)
        ]
        self._run_queue = builder_nodes[node_id].run_queue
        builder = TopologyBuilder(
            config, jobs_by_name, self._policy, self._profiler,
            ChannelTable(), ConstantDelay(local=0.0, remote=0.0), True,
        )
        self._plan = builder.build(builder_nodes)
        self._ops = self._plan.ops

        self.metrics = MetricsHub()
        for job in jobs:
            self.metrics.register_job(job.name, job.group, job.latency_constraint)
        for op_rt in self._ops.values():
            op_rt.job_metrics = self.metrics.job(op_rt.job.name)

        loss_rng = rng.stream(f"mp/loss/{node_id}") if config.mp_loss_rate > 0 else None
        self._reliable = MpReliableDelivery(
            self._now, config.retransmit_timeout, config.retransmit_backoff_cap,
            self.metrics, loss_rate=config.mp_loss_rate, loss_rng=loss_rng,
        )
        self.transport = ProcessTransport(
            node_id, self._plan, jobs_by_name, config, self.metrics,
            self._profiler, self._reliable, self._run_queue, self._now,
        )
        self._codecs = {peer: DataCodec() for peer in self._peers}
        self._codec_by_conn = {
            conn: self._codecs[peer] for peer, conn in self._peers.items()
        }
        self.transport.attach_conns(self._peers, self._codecs)
        self._cost_mode = config.mp_cost_mode
        self._sleep_cost = self._cost_mode == "sleep"
        self.spin_rate = 0.0
        self._shedder = (
            DeadlineShedder(config.shed_slack) if config.shed_expired else None
        )
        self._ingest = (
            None if shard is None else IngestDriver(shard, config.mp_realtime)
        )
        self._contexts = config.contexts_enabled
        self._quantum = config.quantum
        self._poll = config.mp_poll_interval
        self._capacity = config.source_mailbox_capacity
        self._record_completions = config.record_completion_timeline
        #: coordinator-announced stage rescales awaiting a quiescent point
        self._pending_rescales: list[tuple[str, str, int]] = []
        self._stage_rescales = 0
        self._keys_moved = 0

        # observability plane (null-collaborator idiom: with tracing and
        # telemetry off every field is None and the hot path sees only
        # dead ``is None`` branches — obs modules are not even imported)
        self._tracer = None
        self._telemetry = None
        self._tm_interval = None
        self._tm_last_time = 0.0
        self._tm_last_busy = 0.0
        if config.record_trace:
            from repro.obs.recorder import MpSpanRecorder

            self._tracer = MpSpanRecorder()
            self.transport.attach_tracer(self._tracer)
            self._reliable.attach_tracer(self._tracer)
        if config.mp_telemetry_enabled:
            self._telemetry = []
            self._tm_interval = config.mp_telemetry_interval

    def _now(self) -> float:
        return time.monotonic() - self._epoch

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        send_frame(self._coord, READY, self._node_id)
        while True:
            kind, payload = recv_frame(self._coord)
            if kind == CALIBRATE:
                # every worker calibrates inside this barrier concurrently
                self.spin_rate = calibrate_spin_rate()
                send_frame(self._coord, CAL_DONE, (self._node_id, self.spin_rate))
            elif kind == CLOCK:
                # NTP-style clock probe (obs plane only): answer with the
                # raw monotonic reading *immediately* — the coordinator
                # brackets the round trip and keeps the min-RTT round
                send_frame(self._coord, CLOCK_ACK,
                           (self._node_id, os.getpid(), time.monotonic()))
            elif kind == START:
                self._epoch = payload
                break
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"expected CALIBRATE/CLOCK/START, got {kind}")
        interval = self._config.heartbeat_interval
        last_hb = self._now()
        self._tm_last_time = last_hb
        ingest = self._ingest
        conns = [self._coord] + list(self._peers.values())
        while True:
            self._drain(conns)
            if self._pending_rescales:
                self._apply_pending_rescales()
            now = self._now()
            if ingest is not None:
                ingest.pump(now, self.transport.on_ingest)
            replays = self._reliable.due_retransmits(now)
            if replays:
                self.transport.enqueue_retransmits(replays)
            worked = self._dispatch_quantum()
            self._safe_flush()
            now = self._now()
            if self._stop:
                break
            if (
                self._tm_interval is not None
                and now - self._tm_last_time >= self._tm_interval
            ):
                self._sample_telemetry(now)
            if now - last_hb >= interval:
                self._heartbeat(now)
                last_hb = now
            if not worked:
                timeout = last_hb + interval - now
                deadline = self._reliable.next_deadline()
                if deadline is not None:
                    timeout = min(timeout, deadline - now)
                if ingest is not None:
                    due = ingest.next_due()
                    if due is not None:
                        timeout = min(timeout, due - now)
                if timeout > 0:
                    conn_wait(conns, timeout=min(timeout, self._poll))
        self._report()

    def _drain(self, conns, limit: int = 256) -> None:
        """Handle up to ``limit`` frames across all connections."""
        handled = 0
        progress = True
        while progress and handled < limit:
            progress = False
            for conn in conns:
                try:
                    if not conn.poll():
                        continue
                    raw = conn.recv_bytes()
                except (EOFError, OSError):
                    continue
                progress = True
                handled += 1
                if raw[:1] == DATA_MAGIC:
                    self.transport.on_entries(
                        self._codec_by_conn[conn].decode_data(raw)
                    )
                    continue
                kind, payload = pickle.loads(raw)
                if kind == DATA:
                    self.transport.on_entries(payload)
                elif kind == INGEST:
                    self.transport.on_ingest(payload)
                elif kind == REWIRE:
                    self.transport.rewire(payload[0])
                elif kind == RESCALE:
                    self._pending_rescales.append(payload)
                elif kind == STOP:
                    self._stop = True

    def _safe_flush(self) -> None:
        try:
            self.transport.flush()
        except (BrokenPipeError, OSError):
            # a peer died mid-send; its channels replay after fail-over
            pass

    def _idle(self) -> bool:
        return (
            self._run_queue.pending_operator_count() == 0
            and self._reliable.idle()
            and not self.transport.pending_output()
            and not self._pending_rescales
            and (self._ingest is None or self._ingest.exhausted)
        )

    def _apply_pending_rescales(self) -> None:
        """Apply announced rescales once the target stage is quiescent.

        The flip is exact only when no batch keyed under the old partition
        is still waiting in a stage instance's mailbox, so each rescale
        defers until every instance of its stage is drained and idle (the
        worker is single-threaded, so between quanta nothing is mid-
        absorb).  Order among distinct pending rescales is preserved."""
        remaining: list[tuple[str, str, int]] = []
        blocked: set[tuple[str, str]] = set()
        for job_name, stage_name, parallelism in self._pending_rescales:
            key = (job_name, stage_name)
            instances = [
                op_rt for address, op_rt in self._ops.items()
                if address.job == job_name and address.stage == stage_name
            ]
            if key in blocked or any(
                op_rt.busy or len(op_rt.mailbox) > 0 for op_rt in instances
            ):
                remaining.append((job_name, stage_name, parallelism))
                blocked.add(key)
                continue
            self._keys_moved += apply_stage_rescale(
                self._ops, job_name, stage_name, parallelism
            )
            self._stage_rescales += 1
        self._pending_rescales = remaining

    def _sample_telemetry(self, now: float) -> None:
        """One telemetry-bus reading (buffered; flushed with heartbeats)."""
        from repro.obs.telemetry import TelemetrySample

        elapsed = now - self._tm_last_time
        busy_delta = self._busy_time - self._tm_last_busy
        self._tm_last_time = now
        self._tm_last_busy = self._busy_time
        busy_frac = 0.0
        if elapsed > 0:
            # busy time books in lumps at completion, so clamp (same as
            # the sim sampler's utilization clamp)
            busy_frac = min(1.0, max(0.0, busy_delta / elapsed))
        run_queue = self._run_queue
        peek = getattr(run_queue, "peek_best_priority", None)
        head = float("nan")
        if peek is not None:
            best = peek()
            if best is not None:
                head = best
        state_bytes = 0
        pending_windows = 0
        node_id = self._node_id
        for op_rt in self._ops.values():
            if op_rt.node_id != node_id:
                continue
            store = op_rt.operator.state_store
            if store is not None:
                state_bytes += store.approx_size()
                pending_windows += store.pending_window_count
        ingest = self._ingest
        self._telemetry.append(TelemetrySample(
            now, node_id, run_queue.pending_operator_count(), head,
            busy_frac, self._reliable.outstanding_total(),
            0 if ingest is None else ingest.remaining,
            state_bytes, pending_windows, self._messages,
        ))

    def _flush_obs(self) -> None:
        """Ship dirty span parts and buffered telemetry to the coordinator."""
        tracer = self._tracer
        if tracer is not None:
            parts = tracer.drain_parts()
            if parts:
                try:
                    send_frame(self._coord, TRACE, (self._node_id, parts))
                except (BrokenPipeError, OSError):
                    pass
        if self._telemetry:
            from repro.obs.telemetry import pack_samples

            try:
                send_frame(self._coord, TELEMETRY,
                           (self._node_id, pack_samples(self._telemetry)))
            except (BrokenPipeError, OSError):
                pass
            self._telemetry.clear()

    def _heartbeat(self, now: float) -> None:
        if self._tracer is not None or self._telemetry:
            self._flush_obs()
        try:
            send_frame(self._coord, HB, (
                self._node_id, self._idle(),
                self.transport.ingest_acks(), self._messages,
            ))
        except (BrokenPipeError, OSError):
            self._stop = True  # the coordinator is gone: report and exit

    def _report(self) -> None:
        if self._tm_interval is not None:
            # one last reading so short runs still produce a series
            self._sample_telemetry(self._now())
        if self._tracer is not None or self._telemetry:
            self._flush_obs()  # final drain: REPORT must come last
        self.metrics.record_worker_busy(self._node_id, 0, self._busy_time)
        stats = {
            "busy_time": self._busy_time,
            "messages": self._messages,
            "spin_rate": self.spin_rate,
            "fifo_violations": (
                self.transport.fifo_violations + self._reliable.fifo_violations
            ),
            "channel_count": self._reliable.channel_count,
            "stage_rescales": self._stage_rescales,
            "keys_moved": self._keys_moved,
        }
        try:
            send_frame(self._coord, REPORT, (self._node_id, self.metrics, stats))
        except (BrokenPipeError, OSError):
            pass

    # ------------------------------------------------------------------
    # dispatch (wall-clock analogue of NodeRuntime._run_op)
    # ------------------------------------------------------------------

    def _dispatch_quantum(self) -> bool:
        """Pop one operator and run its messages for a quantum.

        Returns True when any message was executed."""
        op_rt = self._run_queue.pop(0)
        if op_rt is None:
            return False
        op_rt.busy = True
        start = self._now()
        mailbox = op_rt.mailbox
        shedder = self._shedder
        worked = False
        while True:
            msg = mailbox.pop()
            if op_rt.blocked:
                capacity = self._capacity
                if capacity is not None and len(mailbox) < capacity:
                    released = op_rt.blocked.popleft()
                    release_now = self._now()
                    released.enqueue_time = release_now
                    mailbox.push(released)
                    if self._tracer is not None:
                        # back-pressure release is this message's admission
                        self._tracer.on_admit(released, release_now)
            if shedder is not None:
                pc = msg.pc
                if pc is not None and shedder.should_shed(pc, self._now()):
                    # deadline-aware load shedding, mirrored from the sim
                    # dispatch loop: the start deadline is unmeetable, so
                    # executing would only delay messages that can still
                    # make it; shed work still acks (at-least-once intact)
                    job_metrics = op_rt.job_metrics
                    job_metrics.messages_shed += 1
                    job_metrics.tuples_shed += msg.tuple_count
                    if self._tracer is not None:
                        self._tracer.on_shed(msg, op_rt, self._now())
                    if op_rt.is_source:
                        self.transport.note_source_processed(op_rt, msg)
                    elif msg.seq != -1:
                        self._reliable.on_processed(msg)
                    worked = True
                    if len(mailbox) == 0:
                        op_rt.busy = False
                        return worked
                    continue
            self._execute(op_rt, msg)
            worked = True
            if len(mailbox) == 0:
                op_rt.busy = False
                return worked
            now = self._now()
            if now - start >= self._quantum:
                if self._run_queue.should_swap(op_rt):
                    op_rt.busy = False
                    self._run_queue.requeue(op_rt, 0)
                    return worked
                start = now  # fresh quantum, same operator (sim parity)

    def _execute(self, op_rt, msg) -> None:
        now = self._now()
        tracer = self._tracer
        job_metrics = op_rt.job_metrics
        stage_name = op_rt.stage_name
        enqueue_time = msg.enqueue_time
        wait = now - enqueue_time
        if wait == wait:  # NaN propagates from unset enqueue
            queue_stat = op_rt.queue_stat
            if queue_stat is None:
                queue_stat = job_metrics.queueing_stat(stage_name)
                op_rt.queue_stat = queue_stat
            queue_stat.add(wait)
        pc = msg.pc
        if pc is not None and now > pc.deadline:
            job_metrics.start_violations += 1
        cost = op_rt.cost_model.sample(msg.tuple_count, self._cost_rng)
        exec_stat = op_rt.exec_stat
        if exec_stat is None:
            exec_stat = job_metrics.execution_stat(stage_name)
            op_rt.exec_stat = exec_stat
        exec_stat.add(cost)
        if tracer is not None:
            started = now
            tracer.on_start(msg, op_rt, 0, now, wait, cost, self._run_queue)
        if cost > 0:
            if self._sleep_cost:
                time.sleep(cost)
            elif self.spin_rate > 0.0:  # "spin" after calibration
                spin(int(cost * self.spin_rate))
        self._busy_time += cost
        now = self._now()
        self._messages += 1
        job_metrics.messages_processed += 1
        self.metrics.total_messages += 1
        emissions = op_rt.operator.on_message(msg, now)
        if tracer is not None:
            # mp spans carry *realized* wall time (cost realization plus
            # the operator's actual work), not the sampled cost the stats
            # book — children are sent after ``finished``, so chains stay
            # causal; see docs/observability.md "mp semantics"
            end = self._now()
            tracer.on_execute_end(msg, end, end - started)
        batch = msg.batch
        if op_rt.is_sink and batch is not None and len(batch) > 0:
            job_metrics.record_output(
                now, now - msg.t, msg.tuple_count, float(batch.values.sum())
            )
            if tracer is not None:
                tracer.on_output(msg, now, now - msg.t)
        elif op_rt.is_source:
            count = msg.tuple_count
            job_metrics.tuples_processed += count
            job_metrics.source_events.append((now, count))
        if self._contexts:
            self._profiler.record(op_rt.address, cost)
            self.transport.send_reply(op_rt, msg)
        if self._record_completions:
            self.metrics.completion_log.append(
                (now, op_rt.job.name, stage_name, op_rt.address.index, msg.msg_id)
            )
        if op_rt.is_source:
            self.transport.note_source_processed(op_rt, msg)
        elif msg.seq != -1:
            self._reliable.on_processed(msg)
        if emissions:
            self.transport.route_emissions(op_rt, msg, emissions)


def worker_main(node_id: int, config, jobs: list, policy,
                coord_conn, peer_conns: dict, shard=None,
                unused_conns: list | None = None) -> None:
    """Process entry point (fork start method: objects are inherited).

    ``unused_conns`` are the pipe ends this worker inherited through fork
    but does not own (other workers' coordinator and mesh ends).  Closing
    them first is load-bearing for fail-over: as long as *any* process
    keeps a duplicate of a dead peer's receiving end open, writes to that
    peer never raise ``BrokenPipeError`` — they silently fill the socket
    buffer and then block the sender forever, deadlocking the cluster
    instead of surfacing the failure."""
    for conn in unused_conns or ():
        conn.close()
    # forked processes inherit the parent's message-id counter position;
    # stride into a per-node block so cross-process identity is unambiguous
    from repro.dataflow.messages import stride_message_ids
    stride_message_ids(node_id)
    worker = MpWorker(node_id, config, jobs, policy=policy,
                      coord_conn=coord_conn, peer_conns=peer_conns,
                      shard=shard)
    worker.run()

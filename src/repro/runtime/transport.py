"""Transport layer: message delivery, emission routing, and RC replies.

Everything that moves a message between operators lives here, behind the
channel-table interface of :mod:`repro.sim.network`: per-channel FIFO
delivery (§4.3), the local/remote delay models (with optional lognormal
jitter), ingestion from external clients, key-partitioned emission
routing with progress heartbeats, and the RC-carrying acknowledgements
that flow back upstream (Fig. 5a steps 5-6).  Keeping delivery semantics
in one place is what lets future failure models (loss, partitions) hook
in without touching the node dispatch loop.

The transport also owns the wiring-time caches that depend on placement
(route links, reply routes, the ingest fast path) and rebuilds them when
the lifecycle controller migrates an operator to a different node.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.context import PriorityContext
from repro.dataflow.events import EventBatch
from repro.dataflow.messages import Message, MessageKind
from repro.dataflow.operators import Emission, OpAddress
from repro.runtime.topology import OperatorRuntime, client_key
from repro.runtime.workers import Worker


class Transport:
    """Routes messages across the channel table of a simulated cluster."""

    __slots__ = (
        "channels",
        "sim",
        "metrics",
        "_nodes",
        "_ops",
        "_jobs",
        "_client_converters",
        "_builder",
        "_delay_model",
        "_static_delay",
        "_contexts",
        "_profiler",
        "_capacity",
        "_ingest_cache",
        "_reliable",
        "_tracer",
        "_bandwidth",
    )

    def __init__(
        self,
        sim,
        nodes: list,
        plan,
        jobs: dict,
        channels,
        delay_model,
        static_delay: bool,
        metrics,
        profiler,
        config,
        builder,
    ):
        self.sim = sim
        self.channels = channels
        self.metrics = metrics
        self._nodes = nodes
        self._ops = plan.ops
        self._jobs = jobs
        self._client_converters = plan.client_converters
        self._builder = builder
        self._delay_model = delay_model
        self._static_delay = static_delay
        self._contexts = config.contexts_enabled
        self._profiler = profiler
        self._capacity = config.source_mailbox_capacity
        self._ingest_cache: dict = {}
        self._reliable = None
        self._tracer = None
        self._bandwidth = None

    def attach_bandwidth(self, bandwidth) -> None:
        """Install the shared-link model (``link_capacity`` runs only).

        Cross-node sends then pay a serialization time on the source
        node's contended uplink on top of the propagation delay.  When
        the reliable layer is installed it charges bandwidth itself (per
        wire attempt, so retransmissions contend too)."""
        self._bandwidth = bandwidth

    def attach_tracer(self, tracer) -> None:
        """Install the span recorder (``record_trace`` runs only).

        Stays None otherwise, so the send/deliver hot paths keep a single
        dead ``is not None`` branch — the same idiom as ``_reliable``."""
        self._tracer = tracer

    def attach_reliable(self, reliable) -> None:
        """Install the reliable-delivery layer (fault-schedule runs only).

        When installed, every data send is routed through ack/retransmit
        channels (see :mod:`repro.runtime.recovery`); :meth:`deliver` stays
        the admission body the reliable layer calls back into.  Fault-free
        runs never install it, keeping the original fire-and-forget path
        bit-identical."""
        self._reliable = reliable

    # ------------------------------------------------------------------
    # ingestion (client -> source operator)
    # ------------------------------------------------------------------

    def ingest(
        self,
        job_name: str,
        stage_name: str,
        source_index: int,
        logical_times,
        values=None,
        keys=None,
        sorted_times: bool = False,
    ) -> None:
        """Deliver a batch of external events to a source operator.

        For event-time jobs the given logical times are kept; for
        ingestion-time jobs the logical time of every event is the arrival
        instant (§4.3).  ``sorted_times`` asserts the given logical times
        are non-decreasing, enabling endpoint min/max on the hot path.
        """
        now = self.sim.now
        cached = self._ingest_cache.get((job_name, stage_name, source_index))
        if cached is None:
            job = self._jobs[job_name]
            src_rt = self._ops[OpAddress(job_name, stage_name, source_index)]
            key = client_key(job_name, stage_name, source_index)
            converter = self._client_converters[key] if self._contexts else None
            channel = self.channels.channel(key, src_rt.address)
            cached = (
                job,
                src_rt,
                key,
                converter,
                channel,
                src_rt.channel_index_of(key),
                # clients are remote machines (node id -1 never matches)
                self._delay_model.delay(-1, src_rt.node_id)
                if self._static_delay
                else None,
            )
            self._ingest_cache[(job_name, stage_name, source_index)] = cached
        job, src_rt, key, converter, channel, channel_index, transit = cached
        count = len(logical_times)
        if job.time_domain == "ingestion":
            logical_times = np.full(count, now)
            sorted_times = True  # constant logical times
        batch = EventBatch(
            logical_times, values, keys, arrival_time=now, source_id=source_index,
            times_sorted=sorted_times,
        )
        progress = batch.max_logical_time
        pc = None
        if converter is not None:
            pc = converter.build(
                p=progress,
                t=now,
                now=now,
                target_stage=stage_name,
                target_window=src_rt.stage.window,
                tuple_count=count,
                at_source=True,
            )
        msg = Message(
            target=src_rt.address,
            batch=batch,
            p=progress,
            t=now,
            deps_arrival=now,
            sender=key,
            pc=pc,
            channel_index=channel_index,
        )
        src_rt.job_metrics.tuples_ingested += count
        if self._tracer is not None:
            self._tracer.on_send(msg, -1, now)  # ingested root: no parent
        if self._reliable is not None:
            self._reliable.send(None, src_rt, channel, msg)
            return
        if transit is None:
            # clients are remote machines (node id -1 never matches a node)
            transit = self._delay_model.delay(-1, src_rt.node_id)
        arrival = channel.deliver_time(now, transit)
        self.sim.schedule_at_fast(arrival, self.deliver, src_rt, msg, None)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def deliver(
        self, op_rt: OperatorRuntime, msg: Message, producer: Optional[Worker]
    ) -> None:
        if op_rt.is_source:
            capacity = self._capacity
            if capacity is not None and (
                op_rt.blocked or len(op_rt.mailbox) >= capacity
            ):
                # ingestion back-pressure: hold the message in arrival order
                # until the source's mailbox drains below capacity
                op_rt.blocked.append(msg)
                op_rt.job_metrics.backpressure_events += 1
                return
            msg.enqueue_time = self.sim.now
            op_rt.mailbox.push(msg)
            job_metrics = op_rt.job_metrics
            size = len(op_rt.mailbox)
            if size > job_metrics.max_source_mailbox:
                job_metrics.max_source_mailbox = size
        else:
            msg.enqueue_time = self.sim.now
            op_rt.mailbox.push(msg)
        if self._tracer is not None:
            # mailbox admission (back-pressured messages are admitted later,
            # when the dispatch loop releases them below capacity)
            self._tracer.on_admit(msg, self.sim.now)
        node = self._nodes[op_rt.node_id]
        hint = None
        if producer is not None and producer.node_id == op_rt.node_id:
            hint = producer.local_id
        node.run_queue.notify(op_rt, self.sim.now, hint)
        node.wake_idle_worker()

    # ------------------------------------------------------------------
    # emission routing
    # ------------------------------------------------------------------

    def route_emissions(
        self,
        src_rt: OperatorRuntime,
        trigger: Message,
        emissions: list[Emission],
        worker: Worker,
    ) -> None:
        for route in src_rt.routes:
            links = route.links
            if route.active != len(links):
                # stage rescale: only the leading ``active`` instances
                # receive data; keys repartition modulo the active count
                links = links[: route.active]
            if route.key_partitioned and len(links) > 1:
                parallelism = len(links)
                if parallelism == 2:
                    for emission in emissions:
                        batch = emission.batch
                        mask = batch.keys % 2 == 0
                        self._send(
                            src_rt, links[0], batch.select(mask),
                            emission, trigger, worker,
                        )
                        self._send(
                            src_rt, links[1], batch.select(~mask),
                            emission, trigger, worker,
                        )
                    continue
                for emission in emissions:
                    partition = emission.batch.keys % parallelism
                    for j, link in enumerate(links):
                        sub = emission.batch.select(partition == j)
                        self._send(src_rt, link, sub, emission, trigger, worker)
            else:
                for emission in emissions:
                    for link in links:
                        self._send(
                            src_rt, link, emission.batch, emission, trigger, worker
                        )

    def _send(
        self,
        src_rt: OperatorRuntime,
        link: tuple,
        batch: EventBatch,
        emission: Emission,
        trigger: Message,
        worker: Worker,
    ) -> None:
        dst_rt, channel, channel_index, transit = link
        if len(batch) == 0 and not dst_rt.stage.is_windowed:
            # only windowed operators consume progress heartbeats
            return
        now = self.sim.now
        pc: Optional[PriorityContext] = None
        converter = src_rt.converter
        if self._contexts and converter is not None:
            pc = converter.build(
                p=emission.progress,
                t=emission.arrival,
                now=now,
                target_stage=dst_rt.stage_name,
                target_window=dst_rt.stage.window,
                tuple_count=len(batch),
                inherited=trigger.pc,
                at_source=False,
            )
        out = Message(
            target=dst_rt.address,
            batch=batch,
            p=emission.progress,
            t=emission.arrival,
            deps_arrival=emission.arrival,
            sender=src_rt.address,
            pc=pc,
            channel_index=channel_index,
        )
        if self._tracer is not None:
            # child span: its ``sent`` equals the trigger's completion
            # instant, so causal chains telescope end to end
            self._tracer.on_send(out, trigger.msg_id, now)
        if self._reliable is not None:
            self._reliable.send(src_rt, dst_rt, channel, out)
            return
        if transit is None:
            transit = self._delay_model.delay(src_rt.node_id, dst_rt.node_id)
        if self._bandwidth is not None:
            transit += self._bandwidth.transfer_time(
                now, src_rt.node_id, dst_rt.node_id, len(batch),
                float("inf") if pc is None else pc.deadline,
            )
        arrival = channel.deliver_time(now, transit)
        self.sim.schedule_at_fast(arrival, self.deliver, dst_rt, out, worker)

    # ------------------------------------------------------------------
    # reply contexts
    # ------------------------------------------------------------------

    def send_reply(self, op_rt: OperatorRuntime, msg: Message) -> None:
        """PREPAREREPLY at ``op_rt`` → PROCESSCTXFROMREPLY at the sender.

        Acknowledgements carry no data and execute no operator logic, so
        they bypass the run queue; they still pay the network delay
        (Fig. 5a steps 5-6)."""
        if msg.kind is not MessageKind.DATA or msg.sender is None:
            return
        if op_rt.converter is None:
            return
        rc = op_rt.converter.prepare_reply(self._profiler.estimate(op_rt.address))
        rc.mailbox_size = len(op_rt.mailbox)
        enqueue_time = msg.enqueue_time
        if enqueue_time == enqueue_time:  # not NaN
            rc.queueing_delay = max(0.0, self.sim.now - enqueue_time)
        self.metrics.total_acks += 1
        sender = msg.sender
        route = op_rt.reply_cache.get(sender)
        if route is None:
            if isinstance(sender, tuple) and sender and sender[0] == "client":
                # clients are remote machines (node id -1 never matches)
                converter, dst_node = self._client_converters.get(sender), -1
            else:
                sender_rt = self._ops[sender]
                converter, dst_node = sender_rt.converter, sender_rt.node_id
            transit = (
                self._delay_model.delay(op_rt.node_id, dst_node)
                if self._static_delay
                else None
            )
            route = (converter, dst_node, transit)
            op_rt.reply_cache[sender] = route
        converter, dst_node, delay = route
        if delay is None:
            # jittered transit: drawn per reply, and always drawn before the
            # converter check so the RNG stream is independent of wiring
            delay = self._delay_model.delay(op_rt.node_id, dst_node)
        if converter is None:
            return
        if self._tracer is not None:
            self._tracer.on_reply(msg, self.sim.now)
        self.sim.schedule_fast(delay, converter.process_reply, op_rt.stage_name, rc)

    # ------------------------------------------------------------------
    # reconfiguration support
    # ------------------------------------------------------------------

    def rewire(self, op_rt: OperatorRuntime) -> None:
        """Rebuild every placement-dependent cache after ``op_rt`` moved.

        Migration changes ``op_rt.node_id``, which invalidates three kinds
        of pre-resolved state: the operator's own out-links (transit is
        computed from its node), every upstream link that targets it, and
        reply routes in either direction.  Channels themselves are keyed by
        address, not node, so per-channel FIFO order survives the move —
        in-flight messages keep their already-sampled transit (they were
        on the wire when the operator moved) and deliver to the operator's
        new mailbox on arrival.
        """
        address = op_rt.address
        self._builder.resolve_links(op_rt)
        op_rt.reply_cache.clear()
        for other in self._ops.values():
            if other is op_rt:
                continue
            other.reply_cache.pop(address, None)
            for route in other.routes:
                if any(link[0] is op_rt for link in route.links):
                    self._builder.resolve_links(other)
                    break
        # source migration: the ingest fast path caches a transit computed
        # from the old placement (clients are always remote, so the value
        # is unchanged today — dropped anyway so the invariant is "caches
        # never outlive the placement they were computed from")
        self._ingest_cache.pop((address.job, address.stage, address.index), None)

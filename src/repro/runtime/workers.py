"""Worker and node state.

A worker models one execution thread (vCPU) of a node's thread pool.  All
scheduling logic lives in the engine; workers are state holders: what they
are running, when the current quantum started, and cumulative busy time
(for the utilization metric of Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Worker:
    """One execution thread.

    ``retired`` supports elastic pools: a retired worker finishes its
    current message and then stops taking work.  ``created_at``/
    ``retired_at`` bound its lifetime for worker-seconds accounting."""

    node_id: int
    local_id: int
    idle: bool = True
    wake_scheduled: bool = False
    retired: bool = False
    created_at: float = 0.0
    retired_at: Optional[float] = None
    quantum_start: float = 0.0
    busy_time: float = 0.0
    messages_executed: int = 0
    switches: int = 0
    current_op: Optional[Any] = None
    last_op: Optional[Any] = None

    def lifetime(self, horizon: float) -> float:
        """Seconds this worker was part of the pool within [0, horizon]."""
        end = self.retired_at if self.retired_at is not None else horizon
        return max(0.0, end - self.created_at)


@dataclass
class Node:
    """One cluster node: a run queue shared by a pool of workers."""

    node_id: int
    run_queue: Any
    workers: list[Worker] = field(default_factory=list)

    def idle_worker(self) -> Optional[Worker]:
        """An idle, non-retired worker with no wake already scheduled."""
        for worker in self.workers:
            if worker.idle and not worker.wake_scheduled and not worker.retired:
                return worker
        return None

    @property
    def active_worker_count(self) -> int:
        return sum(1 for w in self.workers if not w.retired)

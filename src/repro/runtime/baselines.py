"""Baseline run queues: default Orleans and custom FIFO (§6).

* :class:`OrleansRunQueue` models Orleans 1.5.2's ConcurrentBag-backed
  global run queue: each worker prefers its *thread-local* work (LIFO, as
  ConcurrentBag's per-thread stack behaves) over the shared global queue,
  and steals from the fullest peer when both are empty.  No priorities —
  ordering is driven purely by message arrival and production locality.
* :class:`FifoRunQueue` is the paper's custom FIFO baseline: operators are
  inserted into one global run queue and extracted in FIFO order.

Both order messages *within* an operator in FIFO order, and both rotate the
running operator at quantum expiry whenever any other operator is waiting
(fair-share behaviour, schedule "a"/"b" of Fig. 4).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.core.scheduler import FifoMailbox, Mailbox, RunQueue


class FifoRunQueue(RunQueue):
    """One global FIFO queue of operators with pending messages."""

    def __init__(self):
        self._queue: deque[Any] = deque()

    def create_mailbox(self) -> Mailbox:
        return FifoMailbox()

    def notify(self, op: Any, now: float, worker_hint: Optional[int] = None) -> None:
        if op.busy or op.in_queue:
            return
        op.in_queue = True
        self._queue.append(op)

    def pop(self, worker_id: int) -> Optional[Any]:
        while self._queue:
            op = self._queue.popleft()
            op.in_queue = False
            if len(op.mailbox) > 0:
                return op
        return None

    def requeue(self, op: Any, worker_id: int) -> None:
        if not op.in_queue:
            op.in_queue = True
            self._queue.append(op)

    def should_swap(self, op: Any) -> bool:
        return len(self._queue) > 0

    def discard(self, op: Any) -> None:
        if op.in_queue:
            op.in_queue = False
            try:
                self._queue.remove(op)
            except ValueError:  # already skipped by a draining pop
                pass

    def pending_operator_count(self) -> int:
        return len(self._queue)


class OrleansRunQueue(RunQueue):
    """Thread-local-first scheduling in the style of Orleans' ConcurrentBag."""

    def __init__(self, worker_count: int):
        if worker_count < 1:
            raise ValueError("need at least one worker")
        self._locals: list[list[Any]] = [[] for _ in range(worker_count)]
        self._global: deque[Any] = deque()

    def create_mailbox(self) -> Mailbox:
        return FifoMailbox()

    def add_worker_slot(self) -> None:
        """Grow the per-worker local queues (elastic pools)."""
        self._locals.append([])

    def notify(self, op: Any, now: float, worker_hint: Optional[int] = None) -> None:
        if op.busy or op.in_queue:
            return
        op.in_queue = True
        if worker_hint is not None and 0 <= worker_hint < len(self._locals):
            # work produced by a worker lands on that worker's local stack
            self._locals[worker_hint].append(op)
        else:
            self._global.append(op)

    def pop(self, worker_id: int) -> Optional[Any]:
        while True:
            op = self._pop_once(worker_id)
            if op is None:
                return None
            op.in_queue = False
            if len(op.mailbox) > 0:
                return op

    def _pop_once(self, worker_id: int) -> Optional[Any]:
        local = self._locals[worker_id]
        if local:
            return local.pop()  # LIFO: freshest local work first
        if self._global:
            return self._global.popleft()
        # steal the oldest item from the fullest peer
        victim = max(
            (q for q in self._locals if q), key=len, default=None
        )
        if victim is not None:
            return victim.pop(0)
        return None

    def requeue(self, op: Any, worker_id: int) -> None:
        if not op.in_queue:
            op.in_queue = True
            self._locals[worker_id].append(op)

    def should_swap(self, op: Any) -> bool:
        return self.pending_operator_count() > 0

    def discard(self, op: Any) -> None:
        if not op.in_queue:
            return
        op.in_queue = False
        queues = [self._global] + self._locals
        for queue in queues:
            try:
                queue.remove(op)
                return
            except ValueError:
                continue

    def pending_operator_count(self) -> int:
        return len(self._global) + sum(len(q) for q in self._locals)

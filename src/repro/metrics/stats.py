"""Latency statistics helpers: percentiles, summaries, CDFs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary of a latency sample (all values in seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    std: float

    def as_row(self, scale: float = 1000.0) -> list[float]:
        """Values scaled (default to milliseconds) for table printing."""
        return [
            self.count,
            self.mean * scale,
            self.p50 * scale,
            self.p95 * scale,
            self.p99 * scale,
            self.max * scale,
            self.std * scale,
        ]


_EMPTY = LatencySummary(0, float("nan"), float("nan"), float("nan"), float("nan"),
                        float("nan"), float("nan"))


class RunningStat:
    """O(1)-memory running mean / max / count (Welford variance).

    Used for high-volume signals (per-stage queueing delays) where storing
    every sample would dominate memory."""

    __slots__ = ("count", "mean", "max", "_m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self.max = float("-inf")
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value > self.max:
            self.max = value

    def merge(self, other: "RunningStat") -> None:
        """Fold another stat into this one (parallel Welford/Chan merge).

        Used when per-process stats are aggregated after an mp-backend run;
        merging is exact for count/mean/max and for the variance
        accumulator."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.max = other.max
            self._m2 = other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        if other.max > self.max:
            self.max = other.max

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return float(np.sqrt(self._m2 / self.count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStat(n={self.count}, mean={self.mean:.6f}, max={self.max:.6f})"


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) of a sample; NaN for an empty sample."""
    if not 0 <= q <= 100:
        raise ValueError("percentile must be within [0, 100]")
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, q))


def summarize(values: Sequence[float]) -> LatencySummary:
    """Full summary of a latency sample."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return _EMPTY
    return LatencySummary(
        count=int(array.size),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
        p99=float(np.percentile(array, 99)),
        max=float(array.max()),
        std=float(array.std()),
    )


def cdf_points(values: Sequence[float], points: int = 20) -> list[tuple[float, float]]:
    """``(value, cumulative_fraction)`` pairs describing the empirical CDF."""
    array = np.sort(np.asarray(values, dtype=np.float64))
    if array.size == 0:
        return []
    if points < 2:
        raise ValueError("need at least 2 CDF points")
    fractions = np.linspace(0.0, 1.0, points)
    indices = np.minimum((fractions * (array.size - 1)).astype(int), array.size - 1)
    return [(float(array[i]), float(f)) for i, f in zip(indices, fractions)]


def ratio(a: float, b: float) -> float:
    """``a / b`` with NaN protection (NaN when either side is invalid)."""
    if b == 0 or np.isnan(a) or np.isnan(b):
        return float("nan")
    return a / b

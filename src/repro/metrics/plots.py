"""Terminal plots: CDFs, time series, heat maps and schedule timelines.

Everything renders to plain monospace text so examples and benchmark logs
can show the *shape* of a distribution or schedule without a plotting
stack.  The schedule timeline mirrors the paper's Fig. 7(c): one row per
operator (grouped by stage), one column per time bucket, a mark wherever a
message started executing.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.metrics.collectors import TimelinePoint

_SHADES = " .:-=+*#%@"


def ascii_cdf(
    samples: Sequence[float],
    width: int = 60,
    height: int = 12,
    unit: str = "s",
    title: str = "",
) -> str:
    """Empirical CDF rendered as a monospace plot."""
    values = np.sort(np.asarray(samples, dtype=np.float64))
    if values.size == 0:
        return "(no samples)"
    low, high = float(values[0]), float(values[-1])
    span = (high - low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for column in range(width):
        x = low + span * column / (width - 1 if width > 1 else 1)
        fraction = float(np.searchsorted(values, x, side="right")) / values.size
        row = min(height - 1, int((1.0 - fraction) * (height - 1)))
        grid[row][column] = "*"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y = 1.0 - i / (height - 1 if height > 1 else 1)
        lines.append(f"{y:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {low:.4g}{unit}" + " " * max(1, width - 18) + f"{high:.4g}{unit}")
    return "\n".join(lines)


def ascii_series(
    points: Sequence[tuple[float, float]],
    width: int = 70,
    height: int = 12,
    title: str = "",
) -> str:
    """(x, y) series as a scatter plot (e.g. latency timelines, Fig. 9)."""
    if not points:
        return "(no points)"
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    x_span = (xs.max() - xs.min()) or 1.0
    y_span = (ys.max() - ys.min()) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = min(width - 1, int((x - xs.min()) / x_span * (width - 1)))
        row = min(height - 1, int((1.0 - (y - ys.min()) / y_span) * (height - 1)))
        grid[row][column] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ys.max():10.4g} ┐")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{ys.min():10.4g} +" + "-" * width)
    lines.append(" " * 12 + f"{xs.min():.4g} .. {xs.max():.4g}")
    return "\n".join(lines)


def ascii_heatmap(matrix, title: str = "", shades: str = _SHADES) -> str:
    """2D intensity map (e.g. the ingestion heat map of Fig. 2c)."""
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim != 2 or array.size == 0:
        return "(empty heatmap)"
    peak = array.max() or 1.0
    lines = [title] if title else []
    for row in array:
        cells = [shades[min(len(shades) - 1, int(v / peak * (len(shades) - 1)))]
                 for v in row]
        lines.append("".join(cells))
    lines.append(f"scale: ' '=0 .. '{shades[-1]}'={peak:.4g}")
    return "\n".join(lines)


def ascii_schedule(
    timeline: Iterable[TimelinePoint],
    start: float,
    end: float,
    width: int = 80,
    stage_order: Optional[Sequence[str]] = None,
    window: Optional[float] = None,
) -> str:
    """Operator schedule timeline in the style of Fig. 7(c).

    One row per (stage, operator index); columns are time buckets; a stage
    mark is drawn at every bucket in which the operator started a message.
    With ``window`` given, columns at window boundaries are drawn as ``|``
    when empty, mirroring the red separators of the paper's figure.
    """
    points = [p for p in timeline if start <= p.time < end]
    if not points:
        return "(no schedule points in range)"
    stages = list(stage_order) if stage_order else sorted({p.stage for p in points})
    stage_mark = {stage: str(i) for i, stage in enumerate(stages)}
    rows: dict[tuple[int, int], list[str]] = {}
    span = end - start
    for point in points:
        if point.stage not in stage_mark:
            continue
        key = (stages.index(point.stage), point.operator_index)
        row = rows.setdefault(key, [" "] * width)
        column = min(width - 1, int((point.time - start) / span * width))
        row[column] = stage_mark[point.stage]
    boundary_columns = set()
    if window:
        boundary = math.ceil(start / window) * window
        while boundary < end:
            boundary_columns.add(min(width - 1, int((boundary - start) / span * width)))
            boundary += window
    lines = [f"operator schedule {start:.2f}s .. {end:.2f}s "
             f"(rows: stage[index]; marks: stage number)"]
    for (stage_index, op_index), row in sorted(rows.items()):
        for column in boundary_columns:
            if row[column] == " ":
                row[column] = "|"
        label = f"{stages[stage_index][:10]:>10}[{op_index:02d}] "
        lines.append(label + "".join(row))
    return "\n".join(lines)

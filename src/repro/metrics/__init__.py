"""Metrics: collection during runs, statistics, and report tables."""

from repro.metrics.collectors import JobMetrics, MetricsHub, TimelinePoint
from repro.metrics.export import job_metrics_to_json, result_to_csv, result_to_json
from repro.metrics.plots import ascii_cdf, ascii_heatmap, ascii_schedule, ascii_series
from repro.metrics.report import format_latency_ms, format_table
from repro.metrics.stats import (
    LatencySummary,
    RunningStat,
    cdf_points,
    percentile,
    ratio,
    summarize,
)

__all__ = [
    "JobMetrics",
    "LatencySummary",
    "MetricsHub",
    "RunningStat",
    "TimelinePoint",
    "ascii_cdf",
    "ascii_heatmap",
    "ascii_schedule",
    "ascii_series",
    "cdf_points",
    "format_latency_ms",
    "format_table",
    "job_metrics_to_json",
    "percentile",
    "ratio",
    "result_to_csv",
    "result_to_json",
    "summarize",
]

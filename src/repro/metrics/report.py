"""Plain-text tables for the benchmark harness and EXPERIMENTS.md."""

from __future__ import annotations

import math
from typing import Any, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 10 ** (-precision)):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_format_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_latency_ms(seconds: float) -> str:
    """Human-readable latency."""
    if math.isnan(seconds):
        return "n/a"
    return f"{seconds * 1000:.1f}ms"

"""Export experiment results and job metrics to JSON / CSV.

The benchmark harness prints text tables; downstream users who want to plot
with their own tooling can dump the same data structurally::

    from repro.metrics.export import result_to_json, result_to_csv
    result = run_fig09()
    pathlib.Path("fig09.json").write_text(result_to_json(result))
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any

from repro.metrics.collectors import JobMetrics


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of cells/extras to JSON-safe values."""
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return _jsonable(value.tolist())
    if hasattr(value, "__dict__") or hasattr(value, "_asdict"):
        return repr(value)
    return repr(value)


def result_to_json(result, include_extras: bool = False, indent: int = 2) -> str:
    """Serialize an :class:`~repro.experiments.common.ExperimentResult`.

    ``extras`` often hold rich objects (summaries, timelines); they are
    included only on request and converted best-effort."""
    payload = {
        "name": result.name,
        "title": result.title,
        "headers": list(result.headers),
        "rows": _jsonable(result.rows),
        "notes": result.notes,
    }
    if include_extras:
        payload["extras"] = {str(k): _jsonable(v) for k, v in result.extras.items()}
    return json.dumps(payload, indent=indent)


def result_to_csv(result) -> str:
    """Headers + rows as CSV (extras are not representable in CSV)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(["" if _is_nan(cell) else cell for cell in row])
    return buffer.getvalue()


def job_metrics_to_json(metrics: JobMetrics, indent: int = 2) -> str:
    """Full dump of one job's recorded outputs and summary statistics."""
    summary = metrics.summary()
    payload = {
        "name": metrics.name,
        "group": metrics.group,
        "latency_constraint": metrics.latency_constraint,
        "outputs": {
            "times": list(metrics.output_times),
            "latencies": list(metrics.latencies),
            "tuples": list(metrics.output_tuples),
            "values": list(metrics.output_values),
        },
        "summary": {
            "count": summary.count,
            "mean": _jsonable(summary.mean),
            "p50": _jsonable(summary.p50),
            "p95": _jsonable(summary.p95),
            "p99": _jsonable(summary.p99),
            "max": _jsonable(summary.max),
            "std": _jsonable(summary.std),
        },
        "success_rate": _jsonable(metrics.success_rate()),
        "start_violations": metrics.start_violations,
        "messages_processed": metrics.messages_processed,
        "tuples_ingested": metrics.tuples_ingested,
        "tuples_processed": metrics.tuples_processed,
        "breakdown": [
            {"stage": stage, "mean_queueing": _jsonable(mq),
             "max_queueing": _jsonable(xq), "mean_execution": _jsonable(me)}
            for stage, mq, xq, me in metrics.breakdown()
        ],
    }
    return json.dumps(payload, indent=indent)


def _is_nan(cell: Any) -> bool:
    return isinstance(cell, float) and math.isnan(cell)

"""Per-job metric collection during a simulation run.

The hub records, per job: every sink output (time, end-to-end latency,
tuples), start-deadline violations observed by the scheduler, and message
counts; plus per-worker busy time for utilization (Fig. 1) and an optional
operator schedule timeline (Fig. 7c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.stats import LatencySummary, RunningStat, summarize


@dataclass(slots=True)
class TimelinePoint:
    """One message start: when, which operator, at what stream progress."""

    time: float
    job: str
    stage: str
    operator_index: int
    progress: float

    # slots dataclasses only pickle under protocol >= 2 on Python 3.11;
    # timeline points cross process boundaries when workers report their
    # schedule timelines, so every protocol must work
    def __getstate__(self) -> tuple:
        return (self.time, self.job, self.stage, self.operator_index, self.progress)

    def __setstate__(self, state: tuple) -> None:
        (self.time, self.job, self.stage, self.operator_index, self.progress) = state


class JobMetrics:
    """Recorded outputs and counters for one job."""

    def __init__(self, name: str, group: str, latency_constraint: float):
        self.name = name
        self.group = group
        self.latency_constraint = latency_constraint
        self.output_times: list[float] = []
        self.latencies: list[float] = []
        self.output_tuples: list[int] = []
        self.output_values: list[float] = []  # sum of result values per output
        self.start_violations = 0
        self.backpressure_events = 0  # client messages held by back-pressure
        self.max_source_mailbox = 0   # memory-pressure proxy
        self.messages_processed = 0
        self.messages_shed = 0      # deadline-expired messages dropped unexecuted
        self.tuples_shed = 0        # event tuples carried by shed messages
        self.operator_exceptions = 0  # injected execution failures (incl. retries)
        self.poison_dropped = 0     # messages dropped after exhausting retries
        self.tuples_ingested = 0
        self.tuples_processed = 0  # tuples consumed at source operators
        self.source_events: list[tuple[float, int]] = []  # (time, tuples)
        #: per-stage queueing-delay running stats (mailbox wait per message)
        self.queueing: dict[str, RunningStat] = {}
        #: per-stage execution-time running stats
        self.execution: dict[str, RunningStat] = {}

    def queueing_stat(self, stage: str) -> RunningStat:
        """Get-or-create the per-stage mailbox-wait stat.

        The single source of truth for queueing bookkeeping: the dispatch
        loop caches this stat on the operator runtime and feeds it the
        same wait value it hands the span recorder, so per-stage stats
        and traces can never disagree."""
        stat = self.queueing.get(stage)
        if stat is None:
            stat = RunningStat()
            self.queueing[stage] = stat
        return stat

    def execution_stat(self, stage: str) -> RunningStat:
        """Get-or-create the per-stage execution-cost stat (see
        :meth:`queueing_stat`)."""
        stat = self.execution.get(stage)
        if stat is None:
            stat = RunningStat()
            self.execution[stage] = stat
        return stat

    def record_queueing(self, stage: str, delay: float) -> None:
        self.queueing_stat(stage).add(delay)

    def record_execution(self, stage: str, cost: float) -> None:
        self.execution_stat(stage).add(cost)

    def breakdown(self) -> list[tuple[str, float, float, float]]:
        """Per-stage ``(stage, mean queueing, max queueing, mean execution)``
        rows — where time goes inside the pipeline."""
        stages = sorted(set(self.queueing) | set(self.execution))
        rows = []
        for stage in stages:
            queueing = self.queueing.get(stage)
            execution = self.execution.get(stage)
            rows.append((
                stage,
                queueing.mean if queueing else 0.0,
                queueing.max if queueing else 0.0,
                execution.mean if execution else 0.0,
            ))
        return rows

    def record_output(self, time: float, latency: float, tuples: int,
                      value: float = 0.0) -> None:
        self.output_times.append(time)
        self.latencies.append(latency)
        self.output_tuples.append(tuples)
        self.output_values.append(value)

    @property
    def output_count(self) -> int:
        return len(self.latencies)

    def latency_array(self) -> np.ndarray:
        return np.asarray(self.latencies, dtype=np.float64)

    def summary(self) -> LatencySummary:
        return summarize(self.latencies)

    def success_rate(self) -> float:
        """Fraction of outputs meeting the job's latency constraint (Fig. 10)."""
        if not self.latencies:
            return float("nan")
        array = self.latency_array()
        return float((array <= self.latency_constraint).mean())

    def on_time_count(self) -> int:
        """Number of outputs that met the latency constraint."""
        if not self.latencies:
            return 0
        return int((self.latency_array() <= self.latency_constraint).sum())

    def completion_success_rate(self, expected_outputs: int) -> float:
        """On-time outputs over *expected* outputs: an output that never
        materialised (stalled pipeline) counts as a miss.  Use when a
        scheduler can starve a job into silence — plain ``success_rate``
        would then survey only the few outputs it did produce."""
        if expected_outputs <= 0:
            return float("nan")
        return min(1.0, self.on_time_count() / expected_outputs)

    def throughput(self, duration: float) -> float:
        """Tuples consumed at the job's sources per second — the paper's
        events/s notion of throughput (robust to aggregation fan-in)."""
        if duration <= 0:
            return float("nan")
        return self.tuples_processed / duration

    def output_rate(self, duration: float) -> float:
        """Result tuples per second at the sink."""
        if duration <= 0:
            return float("nan")
        return sum(self.output_tuples) / duration

    def source_rate_timeline(self, bucket: float = 1.0) -> list[tuple[float, float]]:
        """(bucket_time, tuples/s consumed at sources) series (Fig. 6)."""
        if not self.source_events:
            return []
        buckets: dict[int, float] = {}
        for time, tuples in self.source_events:
            index = int(time // bucket)
            buckets[index] = buckets.get(index, 0.0) + tuples
        return [(i * bucket, total / bucket) for i, total in sorted(buckets.items())]

    def latency_timeline(self, bucket: float = 1.0) -> list[tuple[float, float]]:
        """(bucket_time, mean_latency) series (Figs. 9a-c)."""
        if not self.latencies:
            return []
        buckets: dict[int, list[float]] = {}
        for time, latency in zip(self.output_times, self.latencies):
            buckets.setdefault(int(time // bucket), []).append(latency)
        return [
            (index * bucket, float(np.mean(values)))
            for index, values in sorted(buckets.items())
        ]


class MetricsHub:
    """All metrics for one engine run.

    The schedule timeline is buffered in parallel flat arrays (one append
    per recorded message start, no per-point object); :attr:`timeline`
    materializes :class:`TimelinePoint` objects on demand for analysis and
    plotting."""

    def __init__(self):
        self._jobs: dict[str, JobMetrics] = {}
        self._timeline_times: list[float] = []
        self._timeline_jobs: list[str] = []
        self._timeline_stages: list[str] = []
        self._timeline_indices: list[int] = []
        self._timeline_progress: list[float] = []
        #: (time, job, stage, operator_index, msg_id) per completed message,
        #: recorded only when ``record_completion_timeline`` is enabled
        self.completion_log: list[tuple] = []
        self.worker_busy: dict[tuple[int, int], float] = {}
        self.total_messages = 0
        self.total_acks = 0
        # -- fault & recovery counters (stay zero on fault-free runs) -----
        self.messages_lost_network = 0  # data transmissions dropped by loss models
        self.messages_lost_crash = 0    # queued messages lost to node crashes
        self.messages_dropped_down = 0  # arrivals at a down node (evaporated)
        self.retransmissions = 0        # go-back-N replays by reliable delivery
        #: seconds spent waiting on retransmit timers before replaying
        #: (summed over retransmitting timer expiries across all channels)
        self.retransmit_backoff_time = 0.0
        self.duplicates_dropped = 0     # retransmitted copies deduplicated
        self.acks_lost = 0              # delivery-layer acks dropped by loss
        self.crashes = 0                # fail-stop events executed
        self.node_restarts = 0          # nodes brought back up
        # -- state recovery (stay zero unless state_recovery != "none") ---
        self.checkpoints_taken = 0      # operator snapshots recorded
        self.checkpoint_bytes = 0       # Σ serialized snapshot sizes
        self.state_restores = 0         # operators rebuilt after a crash
        #: Σ processed messages whose effects were lost to a restore and
        #: must be replayed (the rollback distance of every restore)
        self.messages_replayed_recovery = 0
        #: (node_id, crash_time, detection_time) per declared failure
        self.failure_detections: list[tuple[int, float, float]] = []
        # -- partitions & quorum (stay zero without Partition faults) -----
        self.partitions_observed = 0    # partition windows that opened
        self.partition_heals = 0        # partition windows that closed
        self.messages_dropped_partition = 0  # data frames severed at the cut
        self.acks_dropped_partition = 0      # acks severed at the cut
        self.nodes_fenced = 0           # quorum-loss fencing transitions
        #: fail-overs a no-quorum observer wanted but was denied
        self.failovers_suppressed_no_quorum = 0
        self.reconciliations = 0        # heal-time migrate-home passes
        #: operators evacuated while their old instance was still executing
        #: (naive fail-over only; quorum mode keeps this at zero)
        self.double_spawns = 0
        # -- shared-link bandwidth (stay zero without link_capacity) ------
        self.link_bytes_sent = 0.0      # Σ frame bytes serialized on uplinks
        self.link_transfer_seconds = 0.0  # Σ serialization time paid

    def record_timeline_point(
        self, time: float, job: str, stage: str, operator_index: int, progress: float
    ) -> None:
        """Buffer one message start (hot path: five list appends)."""
        self._timeline_times.append(time)
        self._timeline_jobs.append(job)
        self._timeline_stages.append(stage)
        self._timeline_indices.append(operator_index)
        self._timeline_progress.append(progress)

    @property
    def timeline(self) -> list[TimelinePoint]:
        """Recorded message starts, materialized as timeline points."""
        return [
            TimelinePoint(time, job, stage, index, progress)
            for time, job, stage, index, progress in zip(
                self._timeline_times,
                self._timeline_jobs,
                self._timeline_stages,
                self._timeline_indices,
                self._timeline_progress,
            )
        ]

    def register_job(self, name: str, group: str, latency_constraint: float) -> JobMetrics:
        if name in self._jobs:
            raise ValueError(f"job {name!r} registered twice")
        metrics = JobMetrics(name, group, latency_constraint)
        self._jobs[name] = metrics
        return metrics

    def job(self, name: str) -> JobMetrics:
        return self._jobs[name]

    @property
    def job_names(self) -> list[str]:
        return list(self._jobs)

    def jobs_in_group(self, group: str) -> list[JobMetrics]:
        return [m for m in self._jobs.values() if m.group == group]

    def group_latencies(self, group: str) -> np.ndarray:
        """Pooled latency sample across all jobs of a tenant group."""
        arrays = [m.latency_array() for m in self.jobs_in_group(group)]
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return np.empty(0)
        return np.concatenate(arrays)

    def group_summary(self, group: str) -> LatencySummary:
        return summarize(self.group_latencies(group))

    def group_success_rate(self, group: str) -> float:
        jobs = self.jobs_in_group(group)
        successes = total = 0
        for job in jobs:
            array = job.latency_array()
            successes += int((array <= job.latency_constraint).sum())
            total += array.size
        return successes / total if total else float("nan")

    def group_throughput(self, group: str, duration: float) -> float:
        return sum(j.throughput(duration) for j in self.jobs_in_group(group))

    def detection_latencies(self) -> list[float]:
        """Seconds from each crash to its failure declaration."""
        return [det - crash for _, crash, det in self.failure_detections]

    def mean_detection_latency(self) -> float:
        latencies = self.detection_latencies()
        return float(np.mean(latencies)) if latencies else float("nan")

    def shed_totals(self) -> tuple[int, int]:
        """(messages, tuples) shed across all jobs."""
        messages = sum(j.messages_shed for j in self._jobs.values())
        tuples = sum(j.tuples_shed for j in self._jobs.values())
        return messages, tuples

    def fault_report(self) -> dict:
        """Fault/recovery counters as one JSON-able dict (``repro faults``)."""
        shed_messages, shed_tuples = self.shed_totals()
        return {
            "crashes": self.crashes,
            "node_restarts": self.node_restarts,
            "failure_detections": len(self.failure_detections),
            "mean_detection_latency": self.mean_detection_latency(),
            "messages_lost_network": self.messages_lost_network,
            "messages_lost_crash": self.messages_lost_crash,
            "messages_dropped_down": self.messages_dropped_down,
            "retransmissions": self.retransmissions,
            "retransmit_backoff_time": self.retransmit_backoff_time,
            "duplicates_dropped": self.duplicates_dropped,
            "acks_lost": self.acks_lost,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "state_restores": self.state_restores,
            "messages_replayed_recovery": self.messages_replayed_recovery,
            "messages_shed": shed_messages,
            "tuples_shed": shed_tuples,
            "operator_exceptions": sum(
                j.operator_exceptions for j in self._jobs.values()
            ),
            "poison_dropped": sum(j.poison_dropped for j in self._jobs.values()),
            "partitions": {
                "partitions_observed": self.partitions_observed,
                "partition_heals": self.partition_heals,
                "messages_dropped_partition": self.messages_dropped_partition,
                "acks_dropped_partition": self.acks_dropped_partition,
                "nodes_fenced": self.nodes_fenced,
                "failovers_suppressed_no_quorum":
                    self.failovers_suppressed_no_quorum,
                "reconciliations": self.reconciliations,
                "double_spawns": self.double_spawns,
            },
            "link_bytes_sent": self.link_bytes_sent,
            "link_transfer_seconds": self.link_transfer_seconds,
        }

    def record_worker_busy(self, node_id: int, worker_id: int, busy_time: float) -> None:
        self.worker_busy[(node_id, worker_id)] = busy_time

    def utilization(self, duration: float) -> float:
        """Mean worker utilization over the run (Fig. 1's x-axis)."""
        if not self.worker_busy or duration <= 0:
            return float("nan")
        return float(np.mean([b / duration for b in self.worker_busy.values()]))

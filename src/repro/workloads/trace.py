"""Synthetic production-trace generator.

The paper characterises its production workload (Fig. 2) by three aggregate
properties, which this module reproduces with documented parameters:

* **volume power law** (Fig. 2a): 10% of streams carry the majority of the
  data — Zipf-like per-stream volumes;
* **temporal variability** (Fig. 2c): second-scale spikes and idle periods,
  continuously changing across sources — an on/off modulated rate heatmap;
* **spatial skew** (Fig. 10): Type 1 sources are uniform and carry 2× the
  events of Type 2, whose per-source rates vary by ~200×.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def power_law_volumes(
    stream_count: int, rng: np.random.Generator, alpha: float = 1.2, total: float = 1.0
) -> np.ndarray:
    """Per-stream volume shares following a Zipf-like power law.

    Returns shares summing to ``total``, sorted descending.  With the
    default ``alpha`` the top 10% of streams carry well over half the data,
    matching Fig. 2(a).
    """
    if stream_count < 1:
        raise ValueError("need at least one stream")
    ranks = np.arange(1, stream_count + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    # jitter so repeated ranks aren't perfectly deterministic across streams
    weights *= rng.uniform(0.8, 1.2, size=stream_count)
    weights = np.sort(weights)[::-1]
    return total * weights / weights.sum()


def top_k_share(volumes: np.ndarray, fraction: float = 0.1) -> float:
    """Fraction of total volume carried by the top ``fraction`` of streams."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = np.sort(np.asarray(volumes, dtype=np.float64))[::-1]
    k = max(1, int(round(fraction * ordered.size)))
    total = ordered.sum()
    if total == 0:
        return float("nan")
    return float(ordered[:k].sum() / total)


def ingestion_heatmap(
    source_count: int,
    duration_s: int,
    rng: np.random.Generator,
    base_rate: float = 10.0,
    spike_rate: float = 200.0,
    spike_probability: float = 0.05,
    idle_probability: float = 0.25,
    mean_episode_s: float = 4.0,
) -> np.ndarray:
    """A (source x second) rate matrix with spikes and idle periods.

    Each source alternates between episodes of geometric duration; each
    episode is idle, normal, or a spike.  Mirrors the high temporal
    variability of Fig. 2(c).
    """
    if source_count < 1 or duration_s < 1:
        raise ValueError("heatmap dimensions must be positive")
    if not 0 <= spike_probability <= 1 or not 0 <= idle_probability <= 1:
        raise ValueError("probabilities must be within [0, 1]")
    if spike_probability + idle_probability > 1:
        raise ValueError("spike and idle probabilities must sum to at most 1")
    heatmap = np.zeros((source_count, duration_s))
    p_continue = max(0.0, 1.0 - 1.0 / mean_episode_s)
    for source in range(source_count):
        second = 0
        while second < duration_s:
            draw = rng.random()
            if draw < idle_probability:
                rate = 0.0
            elif draw < idle_probability + spike_probability:
                rate = spike_rate * rng.uniform(0.5, 1.5)
            else:
                rate = base_rate * rng.uniform(0.5, 1.5)
            length = 1 + rng.geometric(1.0 - p_continue) if p_continue > 0 else 1
            end = min(duration_s, second + int(length))
            heatmap[source, second:end] = rate
            second = end
    return heatmap


@dataclass(frozen=True)
class SkewedWorkload:
    """Per-source message rates for the Fig. 10 experiment."""

    type1_rates: np.ndarray  # uniform, 2x total volume
    type2_rates: np.ndarray  # skewed ~skew_ratio across sources

    @property
    def skew_ratio(self) -> float:
        positive = self.type2_rates[self.type2_rates > 0]
        return float(positive.max() / positive.min())


def make_skewed_workload(
    source_count: int,
    rng: np.random.Generator,
    type2_total_rate: float = 64.0,
    skew_ratio: float = 200.0,
) -> SkewedWorkload:
    """Build Type 1 / Type 2 per-source rates.

    Type 2 rates follow a geometric progression spanning ``skew_ratio``
    between the hottest and coldest source, scaled to ``type2_total_rate``
    messages/s total.  Type 1 produces twice as many events, spread evenly.
    """
    if source_count < 2:
        raise ValueError("need at least two sources to express skew")
    if skew_ratio < 1:
        raise ValueError("skew ratio must be >= 1")
    exponents = np.linspace(0.0, 1.0, source_count)
    raw = skew_ratio ** exponents
    type2 = raw * (type2_total_rate / raw.sum())
    # random ordering so hot sources are not adjacent by index
    rng.shuffle(type2)
    type1_total = 2.0 * type2_total_rate
    type1 = np.full(source_count, type1_total / source_count)
    return SkewedWorkload(type1_rates=type1, type2_rates=type2)

"""Synthetic production-trace generator.

The paper characterises its production workload (Fig. 2) by three aggregate
properties, which this module reproduces with documented parameters:

* **volume power law** (Fig. 2a): 10% of streams carry the majority of the
  data — Zipf-like per-stream volumes;
* **temporal variability** (Fig. 2c): second-scale spikes and idle periods,
  continuously changing across sources — an on/off modulated rate heatmap;
* **spatial skew** (Fig. 10): Type 1 sources are uniform and carry 2× the
  events of Type 2, whose per-source rates vary by ~200×.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np


def power_law_volumes(
    stream_count: int, rng: np.random.Generator, alpha: float = 1.2, total: float = 1.0
) -> np.ndarray:
    """Per-stream volume shares following a Zipf-like power law.

    Returns shares summing to ``total``, sorted descending.  With the
    default ``alpha`` the top 10% of streams carry well over half the data,
    matching Fig. 2(a).
    """
    if stream_count < 1:
        raise ValueError("need at least one stream")
    ranks = np.arange(1, stream_count + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    # jitter so repeated ranks aren't perfectly deterministic across streams
    weights *= rng.uniform(0.8, 1.2, size=stream_count)
    weights = np.sort(weights)[::-1]
    return total * weights / weights.sum()


def top_k_share(volumes: np.ndarray, fraction: float = 0.1) -> float:
    """Fraction of total volume carried by the top ``fraction`` of streams."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = np.sort(np.asarray(volumes, dtype=np.float64))[::-1]
    k = max(1, int(round(fraction * ordered.size)))
    total = ordered.sum()
    if total == 0:
        return float("nan")
    return float(ordered[:k].sum() / total)


def ingestion_heatmap(
    source_count: int,
    duration_s: int,
    rng: np.random.Generator,
    base_rate: float = 10.0,
    spike_rate: float = 200.0,
    spike_probability: float = 0.05,
    idle_probability: float = 0.25,
    mean_episode_s: float = 4.0,
) -> np.ndarray:
    """A (source x second) rate matrix with spikes and idle periods.

    Each source alternates between episodes of geometric duration; each
    episode is idle, normal, or a spike.  Mirrors the high temporal
    variability of Fig. 2(c).
    """
    if source_count < 1 or duration_s < 1:
        raise ValueError("heatmap dimensions must be positive")
    if not 0 <= spike_probability <= 1 or not 0 <= idle_probability <= 1:
        raise ValueError("probabilities must be within [0, 1]")
    if spike_probability + idle_probability > 1:
        raise ValueError("spike and idle probabilities must sum to at most 1")
    heatmap = np.zeros((source_count, duration_s))
    p_continue = max(0.0, 1.0 - 1.0 / mean_episode_s)
    for source in range(source_count):
        second = 0
        while second < duration_s:
            draw = rng.random()
            if draw < idle_probability:
                rate = 0.0
            elif draw < idle_probability + spike_probability:
                rate = spike_rate * rng.uniform(0.5, 1.5)
            else:
                rate = base_rate * rng.uniform(0.5, 1.5)
            length = 1 + rng.geometric(1.0 - p_continue) if p_continue > 0 else 1
            end = min(duration_s, second + int(length))
            heatmap[source, second:end] = rate
            second = end
    return heatmap


@dataclass(frozen=True)
class SkewedWorkload:
    """Per-source message rates for the Fig. 10 experiment."""

    type1_rates: np.ndarray  # uniform, 2x total volume
    type2_rates: np.ndarray  # skewed ~skew_ratio across sources

    @property
    def skew_ratio(self) -> float:
        positive = self.type2_rates[self.type2_rates > 0]
        return float(positive.max() / positive.min())


def make_skewed_workload(
    source_count: int,
    rng: np.random.Generator,
    type2_total_rate: float = 64.0,
    skew_ratio: float = 200.0,
) -> SkewedWorkload:
    """Build Type 1 / Type 2 per-source rates.

    Type 2 rates follow a geometric progression spanning ``skew_ratio``
    between the hottest and coldest source, scaled to ``type2_total_rate``
    messages/s total.  Type 1 produces twice as many events, spread evenly.
    """
    if source_count < 2:
        raise ValueError("need at least two sources to express skew")
    if skew_ratio < 1:
        raise ValueError("skew ratio must be >= 1")
    exponents = np.linspace(0.0, 1.0, source_count)
    raw = skew_ratio ** exponents
    type2 = raw * (type2_total_rate / raw.sum())
    # random ordering so hot sources are not adjacent by index
    rng.shuffle(type2)
    type1_total = 2.0 * type2_total_rate
    type1 = np.full(source_count, type1_total / source_count)
    return SkewedWorkload(type1_rates=type1, type2_rates=type2)


# ----------------------------------------------------------------------
# vectorized arrival precomputation (million-source scale)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArrivalTrace:
    """A precomputed, flattened arrival schedule for one tenant.

    ``times`` holds every arrival instant sorted ascending; ``sources``
    holds the source index of each arrival.  The pair is the columnar
    ("struct of arrays") form of the per-event tuples a driver loop would
    generate — precomputing it in bulk is what lets million-source sweeps
    and the process backend's ingest replay scale: generation is two
    vectorized RNG draws plus one sort, instead of one Python-level RNG
    call chain per event.
    """

    times: np.ndarray     # float64, sorted ascending
    sources: np.ndarray   # int64, source index per arrival
    source_count: int
    duration: float

    def __post_init__(self):
        if len(self.times) != len(self.sources):
            raise ValueError("times and sources must have equal length")

    @property
    def count(self) -> int:
        return len(self.times)

    def per_source(self, source: int) -> np.ndarray:
        """Arrival instants of one source (ascending)."""
        return self.times[self.sources == source]

    def shard(self, owner_by_source: np.ndarray, shard_count: int) -> list["ArrivalTrace"]:
        """Split into per-owner subtraces (shardable trace iteration).

        ``owner_by_source[i]`` names the shard owning source ``i`` — the
        same owner function the mp backend's worker-ingest mode uses to
        split its captured trace (placement of the source's first
        operator).  Each subtrace preserves global time order and
        per-source arrival order, and the shards partition the arrivals
        exactly: replaying all shards merged by time reproduces the
        original trace.  Vectorized: one mask pass per shard."""
        owner_by_source = np.asarray(owner_by_source, dtype=np.int64)
        if len(owner_by_source) != self.source_count:
            raise ValueError("need one owner per source")
        if owner_by_source.size and not (
            0 <= owner_by_source.min() and owner_by_source.max() < shard_count
        ):
            raise ValueError("owners must be within [0, shard_count)")
        owner_by_arrival = owner_by_source[self.sources]
        return [
            ArrivalTrace(
                times=self.times[owner_by_arrival == shard],
                sources=self.sources[owner_by_arrival == shard],
                source_count=self.source_count,
                duration=self.duration,
            )
            for shard in range(shard_count)
        ]

    def digest(self) -> str:
        """Stable content hash — regression tests pin this."""
        sha = hashlib.sha256()
        sha.update(np.ascontiguousarray(self.times).tobytes())
        sha.update(np.ascontiguousarray(self.sources).tobytes())
        sha.update(f"{self.source_count}:{self.duration!r}".encode())
        return sha.hexdigest()


def precompute_periodic_arrivals(
    rates: np.ndarray, duration: float, phase: float = 0.0
) -> ArrivalTrace:
    """Arrival arrays for periodic sources: source ``i`` fires every
    ``1/rates[i]`` seconds, first at ``phase + 1/rates[i]``.

    Matches :class:`~repro.workloads.arrivals.PeriodicArrivals` driving:
    arrivals strictly after 0 and at or before ``duration``.  Zero-rate
    sources contribute nothing.  Fully vectorized — 10^6 sources generate
    in seconds.
    """
    rates = np.asarray(rates, dtype=np.float64)
    if rates.ndim != 1:
        raise ValueError("rates must be one-dimensional")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if np.any(rates < 0):
        raise ValueError("rates must be non-negative")
    periods = np.zeros_like(rates)
    positive = rates > 0
    periods[positive] = 1.0 / rates[positive]
    counts = np.zeros(len(rates), dtype=np.int64)
    counts[positive] = np.floor(
        (duration - phase) / periods[positive]
    ).astype(np.int64)
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    sources = np.repeat(np.arange(len(rates), dtype=np.int64), counts)
    # k-th arrival of its source (1-based): global arange minus the start
    # offset of each source's run of slots
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    k = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts) + 1
    times = phase + k * periods[sources]
    order = np.argsort(times, kind="stable")
    return ArrivalTrace(
        times=times[order], sources=sources[order],
        source_count=len(rates), duration=float(duration),
    )


def precompute_poisson_arrivals(
    rates: np.ndarray, duration: float, rng: np.random.Generator
) -> ArrivalTrace:
    """Arrival arrays for Poisson sources, in two bulk RNG draws.

    Uses the conditional-uniformity property of the Poisson process: the
    per-source arrival *count* over ``[0, duration]`` is
    ``Poisson(rate * duration)`` and, given the count, the arrival
    instants are i.i.d. uniform on the interval.  One vectorized
    ``poisson`` draw plus one vectorized ``random`` draw therefore
    replaces the per-event exponential-gap loop — same process in
    distribution, a million sources in seconds.  Output is deterministic
    for a given ``(rates, duration, rng state)``.
    """
    rates = np.asarray(rates, dtype=np.float64)
    if rates.ndim != 1:
        raise ValueError("rates must be one-dimensional")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if np.any(rates < 0):
        raise ValueError("rates must be non-negative")
    counts = rng.poisson(rates * duration)
    total = int(counts.sum())
    sources = np.repeat(np.arange(len(rates), dtype=np.int64), counts)
    times = rng.random(total) * duration
    # sort by time (stable: simultaneous arrivals keep source order)
    order = np.argsort(times, kind="stable")
    return ArrivalTrace(
        times=times[order], sources=sources[order],
        source_count=len(rates), duration=float(duration),
    )


def heatmap_to_arrivals(
    heatmap: np.ndarray, rng: np.random.Generator
) -> ArrivalTrace:
    """Vectorized arrivals for a (source x second) rate heatmap.

    Every (source, second) cell is an independent Poisson-count draw at
    the cell's rate with uniform placement inside the second — the bulk
    equivalent of replaying :func:`ingestion_heatmap` through per-event
    driver loops.  A million-source heatmap turns into arrival arrays in
    seconds instead of hours.
    """
    heatmap = np.asarray(heatmap, dtype=np.float64)
    if heatmap.ndim != 2:
        raise ValueError("heatmap must be (source x second)")
    source_count, duration_s = heatmap.shape
    counts = rng.poisson(heatmap)                      # (source, second)
    total = int(counts.sum())
    flat = counts.ravel()                              # source-major
    cells = np.repeat(np.arange(flat.size, dtype=np.int64), flat)
    sources = cells // duration_s
    seconds = cells % duration_s
    times = seconds + rng.random(total)
    order = np.argsort(times, kind="stable")
    return ArrivalTrace(
        times=times[order], sources=sources[order],
        source_count=source_count, duration=float(duration_s),
    )


def heatmap_digest(heatmap: np.ndarray) -> str:
    """Stable content hash of a rate heatmap.

    Pinned by regression tests so refactors of the episode generator can
    never silently change same-seed output (the figures depend on it
    being bit-identical)."""
    return hashlib.sha256(
        np.ascontiguousarray(np.asarray(heatmap, dtype=np.float64)).tobytes()
    ).hexdigest()

"""Arrival processes, batch sizers and source drivers.

A :class:`SourceDriver` binds one source operator of a job to an arrival
process (when messages are ingested) and a batch sizer (how many tuples
each message carries).  Drivers re-schedule themselves on the simulation
clock, so arbitrarily long runs keep the event heap small.

The processes cover the paper's workloads: periodic sparse sources
(Group 1, §6), high-rate periodic sources (Group 2), Pareto-volume arrivals
(Fig. 9) and piecewise-constant rate timelines replaying trace-derived
skew (Fig. 10) and spikes (Fig. 2c).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.dataflow.jobs import JobSpec
from repro.runtime.engine import StreamEngine


class ArrivalProcess:
    """Generates inter-arrival intervals (seconds)."""

    def next_interval(self, rng: np.random.Generator, now: float) -> float:
        raise NotImplementedError


class PeriodicArrivals(ArrivalProcess):
    """Fixed-period arrivals (Group 1's "1 msg/s per source")."""

    def __init__(self, period: float):
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period

    def next_interval(self, rng: np.random.Generator, now: float) -> float:
        return self.period


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrivals with the given mean rate (messages/s)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def next_interval(self, rng: np.random.Generator, now: float) -> float:
        return float(rng.exponential(1.0 / self.rate))


class RateTimelineArrivals(ArrivalProcess):
    """Piecewise-constant rate: ``rates[i]`` messages/s during second ``i``.

    Zero-rate intervals are skipped (idle periods, Fig. 2c).  The timeline
    repeats when the run outlasts it.
    """

    def __init__(self, rates: Sequence[float], interval: float = 1.0):
        rates = [float(r) for r in rates]
        if not rates or all(r <= 0 for r in rates):
            raise ValueError("rate timeline needs at least one positive rate")
        if any(r < 0 for r in rates):
            raise ValueError("rates must be non-negative")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.rates = rates
        self.interval = interval

    def rate_at(self, now: float) -> float:
        index = int(now // self.interval) % len(self.rates)
        return self.rates[index]

    def next_interval(self, rng: np.random.Generator, now: float) -> float:
        # walk forward over idle intervals until a positive-rate one
        time = now
        for _ in range(len(self.rates) + 1):
            rate = self.rate_at(time)
            if rate > 0:
                gap = 1.0 / rate
                if time == now:
                    return gap
                return (time - now) + gap
            # jump to the start of the next interval
            time = (math.floor(time / self.interval) + 1) * self.interval
        raise RuntimeError("unreachable: timeline has a positive rate")  # pragma: no cover


class BatchSizer:
    """Number of tuples carried by each ingested message."""

    def size(self, rng: np.random.Generator) -> int:
        raise NotImplementedError


class FixedBatchSize(BatchSizer):
    def __init__(self, n: int):
        if n < 1:
            raise ValueError("batch size must be at least 1")
        self.n = n

    def size(self, rng: np.random.Generator) -> int:
        return self.n


class ParetoBatchSize(BatchSizer):
    """Heavy-tailed batch sizes: ``scale * Pareto(shape)``, capped.

    Models the Power-Law-like data volume distribution of Figs. 2(a)/9.
    """

    def __init__(self, shape: float = 1.5, scale: float = 200.0, cap: int = 100_000):
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        if cap < 1:
            raise ValueError("cap must be at least 1")
        self.shape = shape
        self.scale = scale
        self.cap = cap

    def size(self, rng: np.random.Generator) -> int:
        raw = self.scale * (1.0 + rng.pareto(self.shape))
        return int(max(1, min(self.cap, raw)))


#: per-batch-size cache of the (1/n, 2/n, ..., 1) spacing vector used to
#: spread a batch's logical times over its arrival interval; the arrays are
#: shared read-only across drivers
_FRACTION_CACHE: dict[int, np.ndarray] = {}


class SourceDriver:
    """Feeds one source operator with generated batches.

    Args:
        engine: the engine to ingest into.
        job: the driven job.
        stage_name: source stage (defaults to the graph's first source).
        index: source operator index within the stage.
        arrivals: inter-arrival process.
        sizer: tuples per message.
        key_count: keys drawn uniformly from ``[0, key_count)``.
        start / until: active window of the driver in simulation time.
        phase: added to event logical times — shifts which wall-clock
            instants windows trigger at (interleaved triggers, Fig. 14).
    """

    def __init__(
        self,
        engine: StreamEngine,
        job: JobSpec,
        arrivals: ArrivalProcess,
        sizer: BatchSizer = FixedBatchSize(1000),
        stage_name: Optional[str] = None,
        index: int = 0,
        key_count: int = 8,
        start: float = 0.0,
        until: float = float("inf"),
        phase: float = 0.0,
    ):
        if key_count < 1:
            raise ValueError("key_count must be at least 1")
        self.engine = engine
        self.job = job
        self.stage_name = stage_name or job.graph.source_stages[0]
        self.index = index
        self.arrivals = arrivals
        self.sizer = sizer
        self.key_count = key_count
        self.start_time = start
        self.until = until
        self.phase = phase
        self.messages_sent = 0
        self.tuples_sent = 0
        self._last_logical = start - job.ingestion_delay + phase
        self._rng = engine.rng.stream(
            f"arrivals/{job.name}/{self.stage_name}/{index}"
        )

    def install(self) -> "SourceDriver":
        """Schedule the first arrival; returns self for chaining."""
        first = self.start_time + self.arrivals.next_interval(self._rng, self.start_time)
        if first <= self.until:
            self.engine.sim.schedule_at_fast(first, self._fire)
        return self

    def _fire(self) -> None:
        now = self.engine.sim.now
        if now > self.until:
            return
        count = self.sizer.size(self._rng)
        # events span the interval since the previous message: real sources
        # accumulate continuously-generated events, so each batch carries
        # logical times up to (now - ingestion_delay) and closes any window
        # whose end it crosses
        upper = now - self.job.ingestion_delay + self.phase
        lower = min(self._last_logical, upper)
        fractions = _FRACTION_CACHE.get(count)
        if fractions is None:
            fractions = np.arange(1, count + 1, dtype=np.float64) / count
            _FRACTION_CACHE[count] = fractions
        logical_times = fractions * (upper - lower)
        logical_times += lower
        self._last_logical = upper
        keys = self._rng.integers(0, self.key_count, size=count)
        self.engine.ingest(
            self.job.name,
            self.stage_name,
            self.index,
            logical_times,
            values=None,
            keys=keys,
            # non-negative span times an increasing spacing vector: the
            # logical times are non-decreasing by construction
            sorted_times=True,
        )
        self.messages_sent += 1
        self.tuples_sent += count
        gap = self.arrivals.next_interval(self._rng, now)
        if now + gap <= self.until:
            self.engine.sim.schedule_fast(gap, self._fire)


def drive_all_sources(
    engine: StreamEngine,
    job: JobSpec,
    arrivals_factory,
    sizer: Optional[BatchSizer] = None,
    key_count: int = 8,
    start: float = 0.0,
    until: float = float("inf"),
    phase: float = 0.0,
) -> list[SourceDriver]:
    """Install one driver per source operator of the job.

    ``arrivals_factory`` is called as ``factory(stage_name, index)`` and
    must return an :class:`ArrivalProcess` (may be shared or per-source).
    """
    drivers = []
    for stage_name in job.graph.source_stages:
        stage = job.graph.stage(stage_name)
        for index in range(stage.parallelism):
            driver = SourceDriver(
                engine,
                job,
                arrivals_factory(stage_name, index),
                sizer=sizer or FixedBatchSize(1000),
                stage_name=stage_name,
                index=index,
                key_count=key_count,
                start=start,
                until=until,
                phase=phase,
            )
            drivers.append(driver.install())
    return drivers

"""Workload generation: arrivals, synthetic traces, tenant job factories."""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BatchSizer,
    FixedBatchSize,
    ParetoBatchSize,
    PeriodicArrivals,
    PoissonArrivals,
    RateTimelineArrivals,
    SourceDriver,
    drive_all_sources,
)
from repro.workloads.tenants import (
    AGG_COST,
    JOIN_COST,
    SINK_COST,
    SOURCE_COST,
    make_aggregation_job,
    make_bulk_analytics_job,
    make_join_job,
    make_latency_sensitive_job,
)
from repro.workloads.trace import (
    SkewedWorkload,
    ingestion_heatmap,
    make_skewed_workload,
    power_law_volumes,
    top_k_share,
)

__all__ = [
    "AGG_COST",
    "ArrivalProcess",
    "BatchSizer",
    "FixedBatchSize",
    "JOIN_COST",
    "ParetoBatchSize",
    "PeriodicArrivals",
    "PoissonArrivals",
    "RateTimelineArrivals",
    "SINK_COST",
    "SOURCE_COST",
    "SkewedWorkload",
    "SourceDriver",
    "drive_all_sources",
    "ingestion_heatmap",
    "make_aggregation_job",
    "make_bulk_analytics_job",
    "make_join_job",
    "make_latency_sensitive_job",
    "make_skewed_workload",
    "power_law_volumes",
    "top_k_share",
]

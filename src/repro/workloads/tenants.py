"""Tenant job factories for the evaluation's two control groups (§6).

* **Group 1 — Latency Sensitive (LS)**: sparse input (1 msg/s per source,
  1000 events/msg), short aggregation windows (1 s), strict latency
  constraints.  Dashboards, SLA-bound pipelines.
* **Group 2 — Bulk Analytics (BA)**: higher and variable input volume,
  long aggregation windows (10 s), lax latency constraints.

Jobs are multi-stage windowed aggregations parallelised into operator
groups, mirroring "our queries feature multiple stages of windowed
aggregation parallelized into a group of operators".
"""

from __future__ import annotations

from typing import Optional

from repro.dataflow.graph import CostModel, DataflowGraph, StageSpec
from repro.dataflow.jobs import (
    GROUP_BULK_ANALYTICS,
    GROUP_LATENCY_SENSITIVE,
    JobSpec,
)
from repro.dataflow.windows import WindowSpec

#: nominal per-stage cost models (seconds).  Calibrated so a 1000-event
#: message takes ~0.7-1.5 ms — comfortably above the 1 ms re-scheduling
#: grain, as in the paper ("this grain is generally shorter than a
#: message's execution time", §6).
SOURCE_COST = CostModel(base=0.0002, per_tuple=5e-7)
AGG_COST = CostModel(base=0.0005, per_tuple=1e-6)
SINK_COST = CostModel(base=0.0001, per_tuple=1e-7)
JOIN_COST = CostModel(base=0.001, per_tuple=2e-6)


def make_aggregation_job(
    name: str,
    group: str = GROUP_LATENCY_SENSITIVE,
    source_count: int = 8,
    window: float = 1.0,
    slide: Optional[float] = None,
    agg_stages: int = 2,
    agg_parallelism: int = 2,
    latency_constraint: float = 0.8,
    agg: str = "sum",
    time_domain: str = "event",
    ingestion_delay: float = 0.05,
    token_rate: Optional[float] = None,
    cost_scale: float = 1.0,
) -> JobSpec:
    """A multi-stage windowed aggregation job.

    Stage layout (matching the 4-stage pipelines of Fig. 7c):
    ``source -> pre_agg (key-partitioned) -> ... -> final_agg -> sink``.
    The first aggregation stage uses the given window; later stages use the
    same window over the partial results.  ``slide`` turns stage-1 windows
    sliding (IPQ2-style); later stages stay tumbling on the slide grid.
    """
    if agg_stages < 1:
        raise ValueError("need at least one aggregation stage")
    scale = cost_scale

    def scaled(cost: CostModel) -> CostModel:
        return CostModel(cost.base * scale, cost.per_tuple * scale, cost.noise_cv)

    stages = [
        StageSpec(
            name="source",
            kind="source",
            parallelism=source_count,
            cost=scaled(SOURCE_COST),
        )
    ]
    first_window = (
        WindowSpec.sliding(window, slide) if slide else WindowSpec.tumbling(window)
    )
    trigger_grid = first_window.slide
    for stage_index in range(agg_stages):
        is_first = stage_index == 0
        is_last = stage_index == agg_stages - 1
        stages.append(
            StageSpec(
                name=f"agg{stage_index}",
                kind="window_agg",
                parallelism=1 if is_last else agg_parallelism,
                cost=scaled(AGG_COST),
                window=first_window if is_first else WindowSpec.tumbling(trigger_grid),
                agg=agg,
                by_key=True,
                key_partitioned=not is_last and agg_parallelism > 1,
            )
        )
    stages.append(StageSpec(name="sink", kind="sink", parallelism=1, cost=scaled(SINK_COST)))
    edges = [(a.name, b.name) for a, b in zip(stages, stages[1:])]
    return JobSpec(
        name=name,
        graph=DataflowGraph(stages, edges),
        latency_constraint=latency_constraint,
        group=group,
        time_domain=time_domain,
        ingestion_delay=ingestion_delay,
        token_rate=token_rate,
    )


def make_latency_sensitive_job(
    name: str,
    source_count: int = 8,
    latency_constraint: float = 0.8,
    window: float = 1.0,
    **kwargs,
) -> JobSpec:
    """Group 1 job: 1 s windows, strict latency target (§6 default 800 ms)."""
    return make_aggregation_job(
        name,
        group=GROUP_LATENCY_SENSITIVE,
        source_count=source_count,
        window=window,
        latency_constraint=latency_constraint,
        **kwargs,
    )


def make_bulk_analytics_job(
    name: str,
    source_count: int = 8,
    latency_constraint: float = 7200.0,
    window: float = 10.0,
    **kwargs,
) -> JobSpec:
    """Group 2 job: 10 s windows, lax (7200 s) latency constraint (§6.2)."""
    return make_aggregation_job(
        name,
        group=GROUP_BULK_ANALYTICS,
        source_count=source_count,
        window=window,
        latency_constraint=latency_constraint,
        **kwargs,
    )


def make_join_job(
    name: str,
    group: str = GROUP_LATENCY_SENSITIVE,
    source_count: int = 4,
    window: float = 1.0,
    latency_constraint: float = 0.8,
    time_domain: str = "event",
    ingestion_delay: float = 0.05,
) -> JobSpec:
    """IPQ4-style job: windowed join of two streams, then tumbling
    aggregation — "summarizes errors from log events via a windowed join of
    two event streams, followed by aggregation on a tumbling window"."""
    window_spec = WindowSpec.tumbling(window)
    stages = [
        StageSpec(name="source_a", kind="source", parallelism=source_count, cost=SOURCE_COST),
        StageSpec(name="source_b", kind="source", parallelism=source_count, cost=SOURCE_COST),
        StageSpec(
            name="join",
            kind="window_join",
            parallelism=1,
            cost=JOIN_COST,
            window=window_spec,
        ),
        StageSpec(
            name="agg",
            kind="window_agg",
            parallelism=1,
            cost=AGG_COST,
            window=window_spec,
            agg="sum",
        ),
        StageSpec(name="sink", kind="sink", parallelism=1, cost=SINK_COST),
    ]
    edges = [
        ("source_a", "join"),
        ("source_b", "join"),
        ("join", "agg"),
        ("agg", "sink"),
    ]
    return JobSpec(
        name=name,
        graph=DataflowGraph(stages, edges),
        latency_constraint=latency_constraint,
        group=group,
        time_domain=time_domain,
        ingestion_delay=ingestion_delay,
    )
